#include "src/net/fd_handoff.hpp"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>

namespace qserv::net {

namespace {

constexpr char kMagic[8] = {'q', 's', 'r', 'v', 'h', 'a', 'n', 'd'};
constexpr uint32_t kVersion = 1;
constexpr uint8_t kReadyByte = 0x52;  // 'R'
// SCM_RIGHTS caps at 253 descriptors per message (SCM_MAX_FD); a server
// has one listener per worker thread, far below that.
constexpr size_t kMaxFds = 64;

int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool wait_io(int fd, short events, int64_t deadline_ms) {
  for (;;) {
    const int64_t left = deadline_ms - now_ms();
    if (left <= 0) return false;
    pollfd p{fd, events, 0};
    const int r = ::poll(&p, 1, static_cast<int>(left > 1000 ? 1000 : left));
    if (r < 0 && errno == EINTR) continue;
    if (r < 0) return false;
    if (r > 0) return (p.revents & (events | POLLHUP | POLLERR)) != 0;
  }
}

bool send_all(int fd, const void* data, size_t len, int64_t deadline_ms) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n > 0) {
      p += n;
      len -= static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!wait_io(fd, POLLOUT, deadline_ms)) return false;
      continue;
    }
    return false;
  }
  return true;
}

bool recv_all(int fd, void* data, size_t len, int64_t deadline_ms) {
  uint8_t* p = static_cast<uint8_t*>(data);
  while (len > 0) {
    const ssize_t n = ::recv(fd, p, len, 0);
    if (n > 0) {
      p += n;
      len -= static_cast<size_t>(n);
      continue;
    }
    if (n == 0) return false;  // peer closed mid-message
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!wait_io(fd, POLLIN, deadline_ms)) return false;
      continue;
    }
    return false;
  }
  return true;
}

void put_u32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void put_u16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void put_u64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t get_u32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint16_t get_u16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | p[1] << 8);
}

uint64_t get_u64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

bool fill_unix_addr(const std::string& path, sockaddr_un& addr) {
  if (path.size() + 1 > sizeof(addr.sun_path)) return false;
  memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// HandoffServer

HandoffServer::HandoffServer(const std::string& path) : path_(path) {
  sockaddr_un addr{};
  if (!fill_unix_addr(path, addr)) return;
  ::unlink(path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return;
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 1) != 0) {
    ::close(fd);
    return;
  }
  listen_fd_ = fd;
}

HandoffServer::~HandoffServer() {
  if (conn_fd_ >= 0) ::close(conn_fd_);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(path_.c_str());
  }
}

bool HandoffServer::accept_child(int timeout_ms, uint32_t* generation_out) {
  if (listen_fd_ < 0) return false;
  const int64_t deadline = now_ms() + timeout_ms;
  if (!wait_io(listen_fd_, POLLIN, deadline)) return false;
  conn_fd_ = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
  if (conn_fd_ < 0) return false;
  uint8_t hello[sizeof(kMagic) + 4 + 4];
  if (!recv_all(conn_fd_, hello, sizeof(hello), deadline)) return false;
  if (memcmp(hello, kMagic, sizeof(kMagic)) != 0) return false;
  if (get_u32(hello + sizeof(kMagic)) != kVersion) return false;
  if (generation_out != nullptr)
    *generation_out = get_u32(hello + sizeof(kMagic) + 4);
  return true;
}

bool HandoffServer::send_package(const HandoffPackage& pkg) {
  if (conn_fd_ < 0 || pkg.sockets.size() > kMaxFds) return false;
  const int64_t deadline = now_ms() + 30'000;

  // Descriptor message: n_fds + ports, with the fds riding as ancillary
  // data on this exact message (SCM_RIGHTS must accompany real bytes).
  std::vector<uint8_t> head;
  put_u32(head, static_cast<uint32_t>(pkg.sockets.size()));
  for (const auto& [port, fd] : pkg.sockets) put_u16(head, port);

  std::vector<int> fds;
  for (const auto& [port, fd] : pkg.sockets) fds.push_back(fd);
  std::vector<char> ctrl(CMSG_SPACE(fds.size() * sizeof(int)));
  iovec iov{head.data(), head.size()};
  msghdr msg{};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  if (!fds.empty()) {
    msg.msg_control = ctrl.data();
    msg.msg_controllen = ctrl.size();
    cmsghdr* c = CMSG_FIRSTHDR(&msg);
    c->cmsg_level = SOL_SOCKET;
    c->cmsg_type = SCM_RIGHTS;
    c->cmsg_len = CMSG_LEN(fds.size() * sizeof(int));
    memcpy(CMSG_DATA(c), fds.data(), fds.size() * sizeof(int));
  }
  for (;;) {
    const ssize_t n = ::sendmsg(conn_fd_, &msg, MSG_NOSIGNAL);
    if (n == static_cast<ssize_t>(head.size())) break;
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!wait_io(conn_fd_, POLLOUT, deadline)) return false;
      continue;
    }
    return false;  // partial send of the fd message would split the cmsg
  }

  std::vector<uint8_t> body;
  put_u64(body, pkg.checkpoint.size());
  body.insert(body.end(), pkg.checkpoint.begin(), pkg.checkpoint.end());
  return send_all(conn_fd_, body.data(), body.size(), deadline);
}

bool HandoffServer::wait_ready(int timeout_ms) {
  if (conn_fd_ < 0) return false;
  uint8_t b = 0;
  if (!recv_all(conn_fd_, &b, 1, now_ms() + timeout_ms)) return false;
  return b == kReadyByte;
}

// ---------------------------------------------------------------------------
// HandoffClient

HandoffClient::~HandoffClient() {
  if (fd_ >= 0) ::close(fd_);
}

bool HandoffClient::connect_to(const std::string& path, uint32_t generation,
                               int timeout_ms) {
  sockaddr_un addr{};
  if (!fill_unix_addr(path, addr)) return false;
  const int64_t deadline = now_ms() + timeout_ms;
  for (;;) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return false;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      fd_ = fd;
      break;
    }
    ::close(fd);
    if (now_ms() >= deadline) return false;
    ::usleep(20'000);
  }
  std::vector<uint8_t> hello(kMagic, kMagic + sizeof(kMagic));
  put_u32(hello, kVersion);
  put_u32(hello, generation);
  return send_all(fd_, hello.data(), hello.size(), deadline);
}

bool HandoffClient::recv_package(HandoffPackage& pkg, int timeout_ms) {
  if (fd_ < 0) return false;
  const int64_t deadline = now_ms() + timeout_ms;

  // The descriptor message: read header bytes and ancillary fds together.
  uint8_t count_buf[4];
  std::vector<char> ctrl(CMSG_SPACE(kMaxFds * sizeof(int)));
  std::vector<int> fds;
  {
    iovec iov{count_buf, sizeof(count_buf)};
    msghdr msg{};
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    msg.msg_control = ctrl.data();
    msg.msg_controllen = ctrl.size();
    for (;;) {
      if (!wait_io(fd_, POLLIN, deadline)) return false;
      const ssize_t n = ::recvmsg(fd_, &msg, MSG_CMSG_CLOEXEC);
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      if (n != static_cast<ssize_t>(sizeof(count_buf))) return false;
      break;
    }
    for (cmsghdr* c = CMSG_FIRSTHDR(&msg); c != nullptr;
         c = CMSG_NXTHDR(&msg, c)) {
      if (c->cmsg_level != SOL_SOCKET || c->cmsg_type != SCM_RIGHTS) continue;
      const size_t bytes = c->cmsg_len - CMSG_LEN(0);
      const size_t count = bytes / sizeof(int);
      fds.resize(count);
      memcpy(fds.data(), CMSG_DATA(c), count * sizeof(int));
    }
  }
  const uint32_t n_fds = get_u32(count_buf);
  if (n_fds > kMaxFds || fds.size() != n_fds) return false;

  std::vector<uint8_t> ports(n_fds * 2);
  if (n_fds > 0 && !recv_all(fd_, ports.data(), ports.size(), deadline))
    return false;
  pkg.sockets.clear();
  for (uint32_t i = 0; i < n_fds; ++i)
    pkg.sockets.emplace_back(get_u16(ports.data() + i * 2), fds[i]);

  uint8_t len_buf[8];
  if (!recv_all(fd_, len_buf, sizeof(len_buf), deadline)) return false;
  const uint64_t ckpt_len = get_u64(len_buf);
  if (ckpt_len > (1ull << 32)) return false;
  pkg.checkpoint.resize(ckpt_len);
  if (ckpt_len > 0 &&
      !recv_all(fd_, pkg.checkpoint.data(), ckpt_len, deadline))
    return false;
  return true;
}

bool HandoffClient::send_ready() {
  if (fd_ < 0) return false;
  const uint8_t b = kReadyByte;
  return send_all(fd_, &b, 1, now_ms() + 5'000);
}

}  // namespace qserv::net
