// Chaos campaign engine: runs a list of Scenarios against one base fleet
// configuration and scores each with an automated verdict. The campaign
// first runs the base config once with no faults (the baseline), then
// each scenario as an independent simulated run — same seed, same
// machine, faults installed per the scenario's steps — and compares the
// harvest against the scenario's expectations plus the universal guards:
//
//   * zero lost clients: every driver-side client holds a live session
//     at the end of every scenario;
//   * zero invariant violations on every live shard;
//   * recovery pauses inside max_pause_ms, unless the scenario declares
//     the matching SLO breach allowed (an explicit degraded-mode
//     verdict, never a silent pass);
//   * SLO monitor verdicts: every breach must be in the scenario's
//     allow list (allowed breaches mark the verdict "degraded");
//   * digest identity: the scenario's unaffected shards replay their
//     per-frame journal digest streams bit-identically to the baseline.
//
// Determinism: everything runs on the simulated platform with the base
// config's seed, so a campaign is a pure function of (config, scenario
// list) — a verdict flip across commits is a behavior change, not noise.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/chaos/scenario.hpp"
#include "src/harness/shard_experiment.hpp"

namespace qserv::chaos {

// The automated score of one scenario run.
struct Verdict {
  bool pass = false;
  // Passed, but through an explicitly allowed SLO breach (the scenario
  // declared the degradation) rather than fully inside every budget.
  bool degraded = false;
  std::vector<std::string> failures;  // human-readable, empty on pass
  std::vector<std::string> allowed_breaches;  // SLOs that breached, allowed
};

struct ScenarioOutcome {
  std::string name;
  std::string description;
  harness::ShardExperimentResult result;
  Verdict verdict;
  // Journal frames compared bit-for-bit against the baseline (summed
  // over the scenario's digest_shards).
  uint64_t digest_frames_checked = 0;
};

struct CampaignResult {
  harness::ShardExperimentResult baseline;
  bool baseline_ok = false;
  std::vector<std::string> baseline_failures;
  std::vector<ScenarioOutcome> outcomes;

  bool all_passed() const;
  int failed_scenarios() const;
};

class Campaign {
 public:
  struct Options {
    double max_pause_ms = 12.5;  // half a 25 ms master frame
    bool verbose = false;        // narrate each run to stdout
  };

  explicit Campaign(harness::ShardExperimentConfig base);
  Campaign(harness::ShardExperimentConfig base, Options opt);

  void add(Scenario s) { scenarios_.push_back(std::move(s)); }
  const std::vector<Scenario>& scenarios() const { return scenarios_; }

  // Baseline + every scenario, in order. Each scenario is an
  // independent simulated run; the baseline runs once, first.
  CampaignResult run();

 private:
  harness::ShardExperimentConfig base_;
  Options opt_;
  std::vector<Scenario> scenarios_;
};

// The standard fault-composition suite for a 4-shard fleet (single
// crash, simultaneous multi-crash, crash loop, corrupt checkpoint,
// partitions, loss storms, crash-mid-handoff, stranded mailbox,
// quarantine cap). Trigger times derive from base.warmup/measure, so the
// suite scales with the configured run length; base must have >= 4
// shards and sessions pinned (wide boundary_margin) for the digest
// claims to hold.
std::vector<Scenario> standard_scenarios(
    const harness::ShardExperimentConfig& base);

}  // namespace qserv::chaos
