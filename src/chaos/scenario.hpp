// Declarative chaos scenarios: a scenario is a named, seed-deterministic
// composition of fault steps against a multi-shard fleet, plus the
// expectations an automated verdict checks after the run. Steps trigger
// at virtual-time offsets (or at state-dependent moments — "crash shard 2
// while its handoff mailbox is non-empty", "crash again right after each
// restore"), so a scenario replays bit-identically on the simulated
// platform: same seed, same schedule, same verdict.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/harness/shard_experiment.hpp"
#include "src/vthread/time.hpp"

namespace qserv::chaos {

// One fault step. `at` is virtual time from run start (t0); which other
// fields matter depends on `kind`.
struct FaultStep {
  enum class Kind : uint8_t {
    // Engine faults (scheduled against the live fleet).
    kCrashShard,        // inject_crash() on `shard` at `at`
    kCorruptCheckpoint, // flip a byte in `shard`'s next captured image
    // State-dependent crash hooks: armed at `at`, fire when the
    // condition holds (polled every few virtual ms until run end).
    kCrashWhenMailboxBusy,  // crash `shard` once its mailbox is non-empty
    kCrashOnRestore,        // re-crash `shard` after each of its next
                            // `count` supervised restores (crash loop)
    // Network faults (scheduled on the FaultScheduler timeline).
    kStallWorker,       // wedge worker `thread` of `shard` for `dur`
    kLossBurst,         // fleet-wide: drop packets with probability `loss`
    kLatencySpike,      // fleet-wide: add `extra_latency` one-way
    kPartitionClients,  // sever every client port from `shard`'s engine
  };

  Kind kind = Kind::kCrashShard;
  vt::Duration at{};  // trigger / episode start, from t0
  int shard = 0;
  int thread = 0;            // kStallWorker
  vt::Duration dur{};        // episode length (network faults, stalls)
  float loss = 0.5f;         // kLossBurst
  vt::Duration extra_latency{};  // kLatencySpike
  int count = 1;             // kCrashOnRestore: crashes to deliver
};

const char* fault_kind_name(FaultStep::Kind k);

// A named fault composition plus the expectations that score it. The
// verdict always checks the universal guards — zero lost clients at the
// end, zero invariant violations, recovery pauses inside the budget (or
// an explicitly allowed SLO breach = degraded-mode verdict), digest
// bit-identity on `digest_shards` against the no-fault baseline — and
// the scenario-specific expectations below.
struct Scenario {
  std::string name;         // point label in the bench export
  std::string description;  // one line, printed in the campaign report
  std::vector<FaultStep> steps;

  // Shards whose per-frame journal digest streams must be bit-identical
  // to the baseline run (empty = no digest claim; scenarios whose tweak
  // or fault reach every shard cannot make one).
  std::vector<int> digest_shards;
  // Shards that must end kHealthy with restores >= 1.
  std::vector<int> expect_restored;
  // true: at least one supervisor escalation must occur; false: none may
  // (e.g. a client-side partition must not read as engine failure).
  bool expect_escalation = true;
  // Shard expected to end kShed (-1 = any shed is a failure), and the
  // supervisor's shed reason ("budget", "crash-loop", "quarantine-cap").
  int expect_shed = -1;
  const char* expect_shed_reason = nullptr;
  // Expected restore fallback mode / load error on `mode_shard`
  // (restore_mode_name / load_error_name strings; nullptr = unchecked).
  int mode_shard = -1;
  const char* expect_mode = nullptr;
  const char* expect_error = nullptr;
  // Lower bound on fleet-wide stranded-handoff returns.
  uint64_t expect_returns_min = 0;
  // false: the silence-reconnect backstop must never fire (in-place
  // resume is the acceptance path); true: reconnects are part of the
  // story (fresh rebuild, long outage).
  bool allow_reconnects = false;
  // SLO names allowed to breach. Any breach in this list downgrades the
  // verdict to "degraded" instead of failing it; a breach outside the
  // list fails the scenario.
  std::vector<std::string> allow_slos;

  // Optional config mutation (budgets, margins, timeouts) applied to the
  // cloned base config before the steps are installed. A tweak that
  // perturbs engine determinism must come with digest_shards = {}.
  std::function<void(harness::ShardExperimentConfig&)> tweak;
  // Optional scenario-specific assertions; push a message per failure.
  std::function<void(const harness::ShardExperimentResult&,
                     std::vector<std::string>&)>
      extra;
};

}  // namespace qserv::chaos
