#include "src/chaos/campaign.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <utility>

#include "src/net/fault_scheduler.hpp"
#include "src/net/virtual_udp.hpp"
#include "src/obs/fleet.hpp"
#include "src/shard/manager.hpp"

namespace qserv::chaos {

namespace {

constexpr vt::TimePoint t0 = vt::TimePoint::zero();
// State-dependent crash hooks poll fleet state at this virtual cadence —
// well under a 25 ms frame, so "while the mailbox is non-empty" and
// "right after a restore" trigger inside the window they describe.
constexpr vt::Duration kPollPeriod = vt::millis(5);

// Client traffic originates from this port range (driver convention).
constexpr uint16_t kClientPortLo = 40000;
constexpr uint16_t kClientPortHi = 65535;

struct EnginePorts {
  uint16_t lo = 0, hi = 0;
};

EnginePorts engine_ports(const shard::Config& fleet, int shard) {
  const uint16_t lo =
      static_cast<uint16_t>(fleet.base_port + shard * fleet.port_stride);
  return {lo, static_cast<uint16_t>(lo + fleet.server.threads - 1)};
}

// Self-rescheduling virtual-time poll, bounded by the run end so the
// simulated platform's event queue drains. `body` returns true when the
// hook has fired (or can never fire) and polling should stop. The
// closure intentionally keeps itself alive via the shared_ptr cycle —
// the platform owns no copy past the last call (same idiom as the
// harness's observation tick).
void arm_poll(vt::Platform& p, vt::Duration first, int64_t end_ns,
              std::function<bool()> body) {
  auto fn = std::make_shared<std::function<void()>>();
  vt::Platform* pp = &p;
  *fn = [pp, end_ns, body = std::move(body), fn] {
    if (pp->now().ns >= end_ns) return;
    if (body()) return;
    pp->call_after(kPollPeriod, *fn);
  };
  p.call_after(first, *fn);
}

// Installs the scenario's steps into the cloned config: network episodes
// onto the FaultScheduler timeline, engine faults and state-dependent
// crash hooks onto the platform timer, both composing with (after) any
// callbacks the base config already carried.
void install_steps(const Scenario& s, harness::ShardExperimentConfig& cfg) {
  std::vector<FaultStep> net_steps, live_steps;
  for (const FaultStep& st : s.steps) {
    switch (st.kind) {
      case FaultStep::Kind::kStallWorker:
      case FaultStep::Kind::kLossBurst:
      case FaultStep::Kind::kLatencySpike:
      case FaultStep::Kind::kPartitionClients:
        net_steps.push_back(st);
        break;
      default:
        live_steps.push_back(st);
        break;
    }
  }

  if (!net_steps.empty()) {
    // Port geometry is resolved now (post-tweak) and captured by value:
    // the callback outlives this frame.
    const shard::Config fleet = cfg.fleet;
    auto prev = cfg.configure_network;
    cfg.configure_network = [prev, net_steps,
                             fleet](net::VirtualNetwork& net) {
      if (prev) prev(net);
      for (const FaultStep& st : net_steps) {
        const EnginePorts ep = engine_ports(fleet, st.shard);
        switch (st.kind) {
          case FaultStep::Kind::kStallWorker:
            // Scoped to this shard's engine: neighbors sharing the
            // network keep their workers.
            net.faults().add_thread_stall(t0 + st.at, st.dur, st.thread,
                                          ep.lo, ep.hi);
            break;
          case FaultStep::Kind::kLossBurst:
            net.faults().add_loss_burst(t0 + st.at, st.dur, st.loss);
            break;
          case FaultStep::Kind::kLatencySpike:
            net.faults().add_latency_spike(t0 + st.at, st.dur,
                                           st.extra_latency);
            break;
          case FaultStep::Kind::kPartitionClients:
            net.faults().add_partition(t0 + st.at, st.dur, kClientPortLo,
                                       kClientPortHi, ep.lo, ep.hi);
            break;
          default:
            break;
        }
      }
    };
  }

  if (!live_steps.empty()) {
    const int64_t end_ns = (cfg.warmup + cfg.measure).ns;
    auto prev = cfg.schedule_faults;
    cfg.schedule_faults = [prev, live_steps, end_ns](
                              vt::Platform& p, shard::ShardManager& mgr) {
      if (prev) prev(p, mgr);
      shard::ShardManager* pm = &mgr;
      for (const FaultStep& st : live_steps) {
        const int sh = st.shard;
        switch (st.kind) {
          case FaultStep::Kind::kCrashShard:
            p.call_after(st.at, [pm, sh] {
              if (!pm->shard(sh).down()) pm->crash_shard(sh);
            });
            break;
          case FaultStep::Kind::kCorruptCheckpoint:
            p.call_after(st.at,
                         [pm, sh] { pm->shard(sh).corrupt_next_capture(); });
            break;
          case FaultStep::Kind::kCrashWhenMailboxBusy:
            arm_poll(p, st.at, end_ns, [pm, sh]() -> bool {
              if (pm->shard(sh).down()) return true;
              if (pm->shard(sh).crash_flagged()) return false;  // recovering
              if (pm->mailbox(sh).empty()) return false;
              pm->crash_shard(sh);
              return true;
            });
            break;
          case FaultStep::Kind::kCrashOnRestore: {
            auto remaining = std::make_shared<int>(st.count);
            auto seen = std::make_shared<int>(pm->shard(sh).restores());
            arm_poll(p, st.at, end_ns, [pm, sh, remaining, seen]() -> bool {
              if (*remaining <= 0 || pm->shard(sh).down()) return true;
              const int r = pm->shard(sh).restores();
              if (r > *seen && !pm->shard(sh).crash_flagged()) {
                *seen = r;
                pm->crash_shard(sh);
                --*remaining;
                return *remaining <= 0;
              }
              return false;
            });
            break;
          }
          default:
            break;
        }
      }
    };
  }
}

bool contains(const std::vector<std::string>& v, const char* s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

std::string shard_msg(const char* what, int shard, std::string detail) {
  return std::string(what) + " (shard " + std::to_string(shard) + "): " +
         std::move(detail);
}

Verdict evaluate(const Scenario& s, const harness::ShardExperimentResult& r,
                 const harness::ShardExperimentResult& base,
                 const harness::ShardExperimentConfig& cfg,
                 const Campaign::Options& opt, uint64_t& digest_frames) {
  Verdict v;
  auto fail = [&](std::string m) { v.failures.push_back(std::move(m)); };

  // Universal guard: zero lost clients at the end of every scenario.
  if (r.connected != cfg.players)
    fail("lost clients: " + std::to_string(r.connected) + "/" +
         std::to_string(cfg.players) + " connected at end");

  // Universal guard: the cross-structure invariant audit stayed clean.
  uint64_t escalations = 0;
  for (size_t i = 0; i < r.shards.size(); ++i) {
    const auto& ps = r.shards[i];
    escalations += ps.escalations;
    if (!ps.down && ps.invariant_violations != 0)
      fail(shard_msg("invariant violations", static_cast<int>(i),
                     std::to_string(ps.invariant_violations)));
  }

  // Escalation expectation (a client-side fault misread as engine
  // failure is a detection bug, not chaos).
  if (s.expect_escalation && escalations == 0)
    fail("expected a supervisor escalation; none occurred");
  if (!s.expect_escalation && escalations != 0)
    fail("false-positive escalation: supervisor escalated " +
         std::to_string(escalations) + " time(s) on a client-side fault");

  // Shed expectations: exactly the declared shard (if any), for the
  // declared reason.
  for (size_t i = 0; i < r.shards.size(); ++i) {
    if (r.shards[i].state == shard::ShardState::kShed &&
        static_cast<int>(i) != s.expect_shed)
      fail(shard_msg("unexpected shed", static_cast<int>(i),
                     r.shards[i].shed_reason != nullptr
                         ? r.shards[i].shed_reason
                         : "?"));
  }
  if (s.expect_shed >= 0) {
    const auto& ps = r.shards[static_cast<size_t>(s.expect_shed)];
    if (ps.state != shard::ShardState::kShed) {
      fail(shard_msg("expected shed did not happen", s.expect_shed,
                     shard::shard_state_name(ps.state)));
    } else if (s.expect_shed_reason != nullptr &&
               (ps.shed_reason == nullptr ||
                std::string(ps.shed_reason) != s.expect_shed_reason)) {
      fail(shard_msg("wrong shed reason", s.expect_shed,
                     std::string(ps.shed_reason ? ps.shed_reason : "null") +
                         " != " + s.expect_shed_reason));
    }
  }

  // Restore expectations.
  for (int i : s.expect_restored) {
    const auto& ps = r.shards[static_cast<size_t>(i)];
    if (ps.down || ps.state != shard::ShardState::kHealthy ||
        ps.restores < 1)
      fail(shard_msg("not restored to health", i,
                     std::string(shard::shard_state_name(ps.state)) +
                         ", restores=" + std::to_string(ps.restores)));
  }
  if (s.expect_mode != nullptr && s.mode_shard >= 0) {
    const auto& ps = r.shards[static_cast<size_t>(s.mode_shard)];
    if (std::string(shard::restore_mode_name(ps.last_mode)) != s.expect_mode)
      fail(shard_msg("wrong restore mode", s.mode_shard,
                     std::string(shard::restore_mode_name(ps.last_mode)) +
                         " != " + s.expect_mode));
  }
  if (s.expect_error != nullptr && s.mode_shard >= 0) {
    const auto& ps = r.shards[static_cast<size_t>(s.mode_shard)];
    if (std::string(recovery::load_error_name(ps.last_error)) !=
        s.expect_error)
      fail(shard_msg("wrong load error", s.mode_shard,
                     std::string(recovery::load_error_name(ps.last_error)) +
                         " != " + s.expect_error));
  }

  // Containment accounting.
  if (r.handoffs_returned < s.expect_returns_min)
    fail("expected >= " + std::to_string(s.expect_returns_min) +
         " stranded-handoff returns, saw " +
         std::to_string(r.handoffs_returned));
  if (!s.allow_reconnects && r.silence_reconnects != 0)
    fail(std::to_string(r.silence_reconnects) +
         " silence reconnects (in-place resume expected)");

  // Recovery pause budget — breach allowed only through the matching
  // SLO allow entry, which marks the verdict degraded, never silent.
  const bool pause_allowed = contains(s.allow_slos, "recovery_pause");
  for (size_t i = 0; i < r.shards.size(); ++i) {
    const auto& ps = r.shards[i];
    if (ps.down || ps.restores == 0) continue;
    if (ps.last_pause_ms <= opt.max_pause_ms) continue;
    if (pause_allowed) {
      v.degraded = true;
      v.allowed_breaches.push_back("recovery_pause");
    } else {
      fail(shard_msg("recovery pause over budget", static_cast<int>(i),
                     std::to_string(ps.last_pause_ms) + " ms > " +
                         std::to_string(opt.max_pause_ms) + " ms"));
    }
  }

  // SLO monitor verdicts: every breach must be declared.
  for (const obs::SloBreach& b : r.slo_breaches) {
    if (contains(s.allow_slos, b.slo.c_str())) {
      v.degraded = true;
      if (!contains(v.allowed_breaches, b.slo.c_str()))
        v.allowed_breaches.push_back(b.slo);
    } else {
      fail("undeclared SLO breach: " + b.slo + " (" + b.scope + " " +
           b.metric + "=" + std::to_string(b.observed) + " vs " +
           std::to_string(b.bound) + ")");
    }
  }

  // Blast radius: unaffected shards replay bit-identically to baseline.
  digest_frames = 0;
  for (int i : s.digest_shards) {
    const auto& a = base.shards[static_cast<size_t>(i)].journal_digests;
    const auto& b = r.shards[static_cast<size_t>(i)].journal_digests;
    if (a.empty() || a.size() != b.size()) {
      fail(shard_msg("digest streams differ in length", i,
                     std::to_string(a.size()) + " vs " +
                         std::to_string(b.size())));
      continue;
    }
    size_t mismatches = 0;
    for (size_t k = 0; k < a.size(); ++k)
      if (a[k] != b[k]) ++mismatches;
    if (mismatches > 0)
      fail(shard_msg("digest divergence from baseline", i,
                     std::to_string(mismatches) + "/" +
                         std::to_string(a.size()) + " frames"));
    digest_frames += a.size();
  }

  if (s.extra) s.extra(r, v.failures);
  v.pass = v.failures.empty();
  return v;
}

}  // namespace

const char* fault_kind_name(FaultStep::Kind k) {
  switch (k) {
    case FaultStep::Kind::kCrashShard: return "crash-shard";
    case FaultStep::Kind::kCorruptCheckpoint: return "corrupt-checkpoint";
    case FaultStep::Kind::kCrashWhenMailboxBusy:
      return "crash-when-mailbox-busy";
    case FaultStep::Kind::kCrashOnRestore: return "crash-on-restore";
    case FaultStep::Kind::kStallWorker: return "stall-worker";
    case FaultStep::Kind::kLossBurst: return "loss-burst";
    case FaultStep::Kind::kLatencySpike: return "latency-spike";
    case FaultStep::Kind::kPartitionClients: return "partition-clients";
  }
  return "?";
}

bool CampaignResult::all_passed() const {
  if (!baseline_ok) return false;
  for (const ScenarioOutcome& o : outcomes)
    if (!o.verdict.pass) return false;
  return true;
}

int CampaignResult::failed_scenarios() const {
  int n = baseline_ok ? 0 : 1;
  for (const ScenarioOutcome& o : outcomes)
    if (!o.verdict.pass) ++n;
  return n;
}

Campaign::Campaign(harness::ShardExperimentConfig base)
    : Campaign(std::move(base), Options()) {}

Campaign::Campaign(harness::ShardExperimentConfig base, Options opt)
    : base_(std::move(base)), opt_(opt) {}

CampaignResult Campaign::run() {
  CampaignResult out;

  // ---- baseline: the base fleet, no faults ---------------------------
  {
    harness::ShardExperimentConfig cfg = base_;
    obs::FleetObs::Config ocfg;
    ocfg.expected_clients = cfg.players;
    obs::FleetObs obs(nullptr, ocfg);
    cfg.fleet_obs = &obs;
    if (opt_.verbose) {
      std::printf("chaos: running no-fault baseline...\n");
      std::fflush(stdout);
    }
    out.baseline = harness::run_shard_experiment(cfg);
    auto bfail = [&](std::string m) {
      out.baseline_failures.push_back(std::move(m));
    };
    if (out.baseline.connected != cfg.players)
      bfail("baseline lost clients: " +
            std::to_string(out.baseline.connected) + "/" +
            std::to_string(cfg.players));
    for (size_t i = 0; i < out.baseline.shards.size(); ++i) {
      const auto& ps = out.baseline.shards[i];
      if (ps.escalations != 0 || ps.down)
        bfail("baseline shard " + std::to_string(i) +
              " escalated or went down with no fault injected");
      if (ps.invariant_violations != 0)
        bfail("baseline shard " + std::to_string(i) +
              " reported invariant violations");
      if (ps.journal_digests.empty())
        bfail("baseline shard " + std::to_string(i) +
              " produced no journal digests (recovery off?)");
    }
    for (const obs::SloBreach& b : out.baseline.slo_breaches)
      bfail("baseline SLO breach: " + b.slo + " (" + b.scope + ")");
    out.baseline_ok = out.baseline_failures.empty();
  }

  // ---- scenarios, each an independent deterministic run --------------
  for (const Scenario& s : scenarios_) {
    harness::ShardExperimentConfig cfg = base_;
    cfg.fleet_obs = nullptr;
    if (s.tweak) s.tweak(cfg);
    install_steps(s, cfg);
    obs::FleetObs::Config ocfg;
    ocfg.expected_clients = cfg.players;
    obs::FleetObs obs(nullptr, ocfg);
    cfg.fleet_obs = &obs;
    if (opt_.verbose) {
      std::printf("chaos: running scenario '%s' (%zu steps)...\n",
                  s.name.c_str(), s.steps.size());
      std::fflush(stdout);
    }
    ScenarioOutcome o;
    o.name = s.name;
    o.description = s.description;
    o.result = harness::run_shard_experiment(cfg);
    o.verdict = evaluate(s, o.result, out.baseline, cfg, opt_,
                         o.digest_frames_checked);
    if (opt_.verbose) {
      std::printf("chaos:   verdict: %s%s\n",
                  o.verdict.pass
                      ? (o.verdict.degraded ? "pass (degraded)" : "pass")
                      : "FAIL",
                  o.verdict.pass ? "" : " — see failures");
      for (const std::string& f : o.verdict.failures)
        std::printf("chaos:   FAIL: %s\n", f.c_str());
      std::fflush(stdout);
    }
    out.outcomes.push_back(std::move(o));
  }
  return out;
}

std::vector<Scenario> standard_scenarios(
    const harness::ShardExperimentConfig& base) {
  std::vector<Scenario> out;
  const vt::Duration M = base.measure;
  const vt::Duration early = base.warmup + vt::Duration{M.ns / 4};
  const vt::Duration mid = base.warmup + vt::Duration{M.ns / 2};

  // 1. The reference failure: one crash, tail-replay restore, blast
  // radius confined to the failure domain.
  {
    Scenario s;
    s.name = "single-crash-tail-replay";
    s.description =
        "crash shard 1 mid-measure; digest-verified tail replay, "
        "unaffected shards bit-identical";
    s.steps = {{.kind = FaultStep::Kind::kCrashShard, .at = mid, .shard = 1}};
    s.digest_shards = {0, 2, 3};
    s.expect_restored = {1};
    s.mode_shard = 1;
    s.expect_mode = "tail-replay";
    out.push_back(std::move(s));
  }

  // 2. Two shards down in the same supervision window: recovery must be
  // staggered (max_concurrent_restores), both come back, the two
  // survivors replay untouched.
  {
    Scenario s;
    s.name = "double-crash-same-window";
    s.description =
        "crash shards 1 and 2 at the same instant; staggered recovery, "
        "both restored";
    s.steps = {{.kind = FaultStep::Kind::kCrashShard, .at = mid, .shard = 1},
               {.kind = FaultStep::Kind::kCrashShard, .at = mid, .shard = 2}};
    s.digest_shards = {0, 3};
    s.expect_restored = {1, 2};
    out.push_back(std::move(s));
  }

  // 3. A wedged engine (all workers stalled) must escalate via the stale
  // heartbeat, not hang the fleet; the stalled frame legitimately blows
  // the frame budget — declared, so the verdict is degraded, not failed.
  // All four workers stall because a single wedged worker leaves the
  // others publishing idle beats — by design that is NOT an escalation.
  {
    Scenario s;
    s.name = "worker-stall-heartbeat";
    s.description =
        "wedge every worker of shard 2 for 400 ms; stale-heartbeat "
        "escalation, restore, declared frame-budget breach";
    s.steps = {{.kind = FaultStep::Kind::kStallWorker,
                .at = mid,
                .shard = 2,
                .thread = 0,
                .dur = vt::millis(400)},
               {.kind = FaultStep::Kind::kStallWorker,
                .at = mid,
                .shard = 2,
                .thread = 1,
                .dur = vt::millis(400)},
               {.kind = FaultStep::Kind::kStallWorker,
                .at = mid,
                .shard = 2,
                .thread = 2,
                .dur = vt::millis(400)},
               {.kind = FaultStep::Kind::kStallWorker,
                .at = mid,
                .shard = 2,
                .thread = 3,
                .dur = vt::millis(400)}};
    s.digest_shards = {0, 1, 3};
    s.expect_restored = {2};
    s.allow_slos = {"frame_p99"};
    out.push_back(std::move(s));
  }

  // 4. Crash loop: the shard dies again right after every restore. The
  // circuit breaker must cut it off after crash_loop_max_rebuilds and
  // shed its sessions to the survivors.
  {
    Scenario s;
    s.name = "crash-loop-circuit-breaker";
    s.description =
        "shard 1 re-crashes after every restore; breaker trips after 3 "
        "rebuilds in the window and sheds";
    s.steps = {
        {.kind = FaultStep::Kind::kCrashShard, .at = early, .shard = 1},
        {.kind = FaultStep::Kind::kCrashOnRestore,
         .at = early,
         .shard = 1,
         .count = 10}};
    s.expect_shed = 1;
    s.expect_shed_reason = "crash-loop";
    s.allow_reconnects = true;
    s.allow_slos = {"lost_clients", "frame_p99", "handoff_p99",
                    "recovery_pause"};
    s.tweak = [](harness::ShardExperimentConfig& cfg) {
      cfg.fleet.max_restores = 10;  // the breaker, not the budget, decides
      cfg.fleet.crash_loop_max_rebuilds = 3;
      cfg.fleet.restore_backoff = vt::millis(1);
      cfg.fleet.restore_backoff_max = vt::millis(4);
    };
    s.extra = [](const harness::ShardExperimentResult& r,
                 std::vector<std::string>& fails) {
      if (!r.shards[1].breaker_tripped)
        fails.push_back("circuit breaker never tripped on shard 1");
      if (r.shards[1].restores != 3)
        fails.push_back("expected exactly 3 rebuilds before the trip, saw " +
                        std::to_string(r.shards[1].restores));
    };
    out.push_back(std::move(s));
  }

  // 5. Corrupted checkpoint image: the content checksum rejects it and
  // the restore falls through the chain to a fresh rebuild; clients
  // re-join via the silence backstop.
  {
    Scenario s;
    s.name = "corrupt-checkpoint-fresh-rebuild";
    s.description =
        "flip a byte in shard 2's captured image, then crash it; "
        "checksum rejects, fresh rebuild, clients re-join";
    s.steps = {{.kind = FaultStep::Kind::kCorruptCheckpoint,
                .at = mid,
                .shard = 2},
               {.kind = FaultStep::Kind::kCrashShard,
                .at = mid + vt::millis(100),
                .shard = 2}};
    s.digest_shards = {0, 1, 3};
    s.expect_restored = {2};
    s.mode_shard = 2;
    s.expect_mode = "fresh-rebuild";
    s.expect_error = "checksum";
    s.allow_reconnects = true;
    s.allow_slos = {"lost_clients"};
    s.tweak = [](harness::ShardExperimentConfig& cfg) {
      // Faster backstop: the rebuilt engine is empty, so shard 2's
      // clients must notice and re-join within the run.
      cfg.client_silence_timeout = vt::seconds(1);
    };
    out.push_back(std::move(s));
  }

  // 6. A partition severing every client from one shard is a NETWORK
  // failure: the engine idles but beats, so the supervisor must not
  // quarantine it (no false-positive escalation).
  {
    Scenario s;
    s.name = "client-partition-no-false-quarantine";
    s.description =
        "sever all clients from shard 1 for 1.5 s; zero escalations, "
        "clients resume in place after heal";
    s.steps = {{.kind = FaultStep::Kind::kPartitionClients,
                .at = mid,
                .shard = 1,
                .dur = vt::millis(1500)}};
    s.digest_shards = {0, 2, 3};
    s.expect_escalation = false;
    out.push_back(std::move(s));
  }

  // 7. Network fault and engine fault at once: partition on shard 0,
  // crash on shard 1. The partition must not confuse the crash
  // adjudication on either side.
  {
    Scenario s;
    s.name = "partition-plus-crash";
    s.description =
        "partition shard 0's clients while shard 1 crashes; only shard 1 "
        "escalates, both recover";
    s.steps = {{.kind = FaultStep::Kind::kPartitionClients,
                .at = mid,
                .shard = 0,
                .dur = vt::millis(1500)},
               {.kind = FaultStep::Kind::kCrashShard,
                .at = mid + vt::millis(200),
                .shard = 1}};
    s.digest_shards = {2, 3};
    s.expect_restored = {1};
    s.extra = [](const harness::ShardExperimentResult& r,
                 std::vector<std::string>& fails) {
      if (r.shards[0].escalations != 0)
        fails.push_back("partitioned shard 0 was falsely escalated");
    };
    out.push_back(std::move(s));
  }

  // 8. Crash under a fleet-wide loss storm: recovery must converge even
  // while half the packets (including resume traffic) are dropped.
  {
    Scenario s;
    s.name = "loss-storm-crash";
    s.description =
        "50% fleet-wide loss for 1.5 s with shard 3 crashed inside the "
        "storm; restore and in-place resume through the loss";
    s.steps = {{.kind = FaultStep::Kind::kLossBurst,
                .at = mid,
                .dur = vt::millis(1500),
                .loss = 0.5f},
               {.kind = FaultStep::Kind::kCrashShard,
                .at = mid + vt::millis(500),
                .shard = 3}};
    s.expect_restored = {3};
    out.push_back(std::move(s));
  }

  // 9. Crash-at-phase hook: shard 2 dies precisely while its handoff
  // mailbox holds an in-flight session. The transfer must survive the
  // quarantine and be adopted by the restored generation.
  {
    Scenario s;
    s.name = "crash-mid-handoff";
    s.description =
        "roaming fleet; crash shard 2 the moment its mailbox is "
        "non-empty; in-flight sessions adopted after restore";
    s.steps = {{.kind = FaultStep::Kind::kCrashWhenMailboxBusy,
                .at = early,
                .shard = 2}};
    s.expect_restored = {2};
    // A roaming fleet losing a shard mid-transfer is the messiest case in
    // the suite: sessions caught between extract and adopt ride the
    // silence backstop, and survivors absorbing the displaced load blow
    // the frame budget until the restored shard pulls its slab back. All
    // declared — the verdict is degraded, and the containment claim this
    // scenario makes is the hard one: every client is connected at the
    // end and the in-flight transfers are adopted, not dropped.
    s.allow_reconnects = true;
    s.allow_slos = {"handoff_p99", "lost_clients", "frame_p99"};
    s.tweak = [](harness::ShardExperimentConfig& cfg) {
      cfg.fleet.boundary_margin = 24.0f;  // sessions roam between shards
    };
    s.extra = [](const harness::ShardExperimentResult& r,
                 std::vector<std::string>& fails) {
      if (r.handoffs_out == 0)
        fails.push_back("no handoffs occurred; the hook never bound");
    };
    out.push_back(std::move(s));
  }

  // 10. Stranded mailbox: a long backoff gap after a re-crash leaves
  // shard 1's mailbox unattended; transfers parked there past the adopt
  // timeout must bounce back to their source, not strand.
  {
    Scenario s;
    s.name = "crash-loop-stranded-mailbox";
    s.description =
        "re-crash shard 1 after its first restore; during the 1.2 s "
        "backoff, stranded handoffs return to source";
    s.steps = {
        {.kind = FaultStep::Kind::kCrashShard, .at = early, .shard = 1},
        {.kind = FaultStep::Kind::kCrashOnRestore,
         .at = early,
         .shard = 1,
         .count = 1}};
    s.expect_restored = {1};
    s.expect_returns_min = 1;
    s.allow_reconnects = true;
    s.allow_slos = {"lost_clients", "frame_p99", "handoff_p99",
                    "recovery_pause"};
    s.tweak = [](harness::ShardExperimentConfig& cfg) {
      cfg.fleet.boundary_margin = 24.0f;
      cfg.fleet.max_restores = 5;
      cfg.fleet.restore_backoff = vt::millis(1200);
      cfg.fleet.restore_backoff_max = vt::millis(1200);
      cfg.fleet.adopt_timeout = vt::millis(100);
    };
    s.extra = [](const harness::ShardExperimentResult& r,
                 std::vector<std::string>& fails) {
      if (r.shards[1].backoff_waits == 0)
        fails.push_back("backoff never held a rebuild back");
      if (r.shards[1].restores < 2)
        fails.push_back("shard 1 was not rebuilt after the backoff");
    };
    out.push_back(std::move(s));
  }

  // 11. Simultaneous triple failure: over the quarantine cap, so the
  // lowest-priority quarantined shard (tie -> highest index: 3) is shed
  // while the other two recover staggered.
  {
    Scenario s;
    s.name = "triple-crash-quarantine-cap";
    s.description =
        "crash shards 1, 2, 3 together; cap sheds shard 3, shards 1 and "
        "2 recover staggered";
    s.steps = {{.kind = FaultStep::Kind::kCrashShard, .at = mid, .shard = 1},
               {.kind = FaultStep::Kind::kCrashShard, .at = mid, .shard = 2},
               {.kind = FaultStep::Kind::kCrashShard, .at = mid, .shard = 3}};
    s.expect_restored = {1, 2};
    s.expect_shed = 3;
    s.expect_shed_reason = "quarantine-cap";
    s.allow_reconnects = true;
    s.allow_slos = {"lost_clients", "frame_p99", "handoff_p99",
                    "recovery_pause"};
    out.push_back(std::move(s));
  }

  return out;
}

}  // namespace qserv::chaos
