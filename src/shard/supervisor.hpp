// Shard supervisor: a platform timer (not an engine thread) that watches
// every shard's heartbeat and drives the failure state machine
//
//   kHealthy ──crash flag / invariant violation / stalled heartbeat──▶
//   kQuarantined (engine stopped, waiting for worker quiescence) ──▶
//     restore budget left:  rebuild + restore  ──▶ kHealthy
//     budget exhausted / circuit breaker tripped / quarantine cap
//       exceeded: shed ──▶ kShed (sessions relocated round-robin to
//       live shards, shard stays down)
//
// Cascading-failure containment layered on the basic machine:
//  - crash-loop circuit breaker: rebuilds are spaced by exponential
//    backoff (restore_backoff doubling per restore, clamped), and a
//    shard that needed >= crash_loop_max_rebuilds rebuilds inside
//    crash_loop_window is shed instead of rebuilt again.
//  - quarantine cap: with more than quarantine_cap shards simultaneously
//    quarantined the lowest-priority one (fewest clients at its last
//    beat; tie -> highest index) is shed to stop the repair queue from
//    starving everyone; the rest recover staggered, at most
//    max_concurrent_restores rebuilds per tick.
//  - stale-handoff reclaim: after every supervision pass, transfers that
//    sat in a non-healthy shard's mailbox past adopt_timeout are pulled
//    back and re-posted toward their source shard, not left stranded.
//
// The tick reads ONLY the heartbeat atomics a shard's hook publishes in
// on_frame_end (plus Shard's own atomics) — never the engine's plain
// fields — so the supervisor is data-race-free against running workers.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/core/server.hpp"
#include "src/recovery/checkpoint.hpp"
#include "src/shard/shard.hpp"
#include "src/vthread/platform.hpp"

namespace qserv::shard {

class ShardManager;

enum class ShardState : uint8_t { kHealthy, kQuarantined, kShed };
const char* shard_state_name(ShardState s);

class ShardSupervisor {
 public:
  ShardSupervisor(vt::Platform& platform, ShardManager& mgr);
  ~ShardSupervisor();

  // Arms the periodic tick. Call after every shard has started.
  void start();
  // Disarms: the current tick (if any) is the last. Safe to call twice.
  void request_stop();

  // Per-shard supervision record. Plain fields written by the tick; read
  // them only after the run has stopped (bench/test harvest) or from the
  // tick itself.
  struct Report {
    ShardState state = ShardState::kHealthy;
    int restores = 0;          // successful supervised restorations
    uint64_t escalations = 0;  // healthy -> quarantined transitions
    double last_pause_ms = 0.0;
    bool last_used_tail = false;
    RestoreMode last_mode = RestoreMode::kNone;
    core::Server::RestoreStats last_stats{};
    recovery::LoadError last_error{};
    uint64_t shed_sessions = 0;  // transfers relocated by the shed path
    // --- containment accounting ---
    uint64_t backoff_waits = 0;  // ticks spent quiesced but held back by
                                 // backoff or the restore stagger
    bool breaker_tripped = false;  // crash-loop circuit breaker fired
    // Static string naming why the shard was shed ("budget",
    // "crash-loop", "quarantine-cap"); nullptr while not kShed.
    const char* shed_reason = nullptr;
  };
  const Report& report(int shard) const { return track_[shard].report; }

  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

 private:
  void tick();
  void schedule_next();
  void supervise(int i, int64_t now_ns, int cap_victim,
                 int& restores_this_tick);
  void do_shed(int i, const char* why);
  // Quarantine-cap victim: the quarantined shard with the fewest clients
  // at its last beat (tie -> highest index); -1 when the cap holds.
  int pick_cap_victim() const;
  // Pulls transfers older than adopt_timeout out of every non-healthy
  // shard's mailbox and re-posts them toward their source shard.
  void reclaim_stale_handoffs(int64_t now_ns);

  struct Track {
    Report report;
    // Earliest time the next rebuild may run (exponential backoff).
    int64_t next_restore_at_ns = 0;
    // Rebuild timestamps inside the sliding crash-loop window.
    std::vector<int64_t> rebuild_at_ns;
  };

  vt::Platform& platform_;
  ShardManager& mgr_;
  std::vector<Track> track_;
  // Round-robin cursor for spreading shed sessions over live shards.
  int shed_cursor_ = 0;
  std::atomic<uint64_t> ticks_{0};
  bool started_ = false;
  // Atomic: request_stop() may come from the harness thread while a tick
  // is in flight on the platform's timer context.
  std::atomic<bool> stop_{false};

  // Liveness gate shared with every scheduled tick callback. On the real
  // platform a pending call_after survives join_all() (only *in-flight*
  // timer callbacks are waited for), so a late tick can fire after this
  // supervisor — and the whole ShardManager — is gone. The callback
  // captures the gate by shared_ptr, locks it, and bails out if the
  // destructor already marked it dead; the destructor's lock also blocks
  // until any concurrently running tick finishes.
  struct TickGate {
    std::mutex mu;
    bool alive = true;
  };
  std::shared_ptr<TickGate> gate_;
};

}  // namespace qserv::shard
