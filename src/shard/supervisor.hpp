// Shard supervisor: a platform timer (not an engine thread) that watches
// every shard's heartbeat and drives the failure state machine
//
//   kHealthy ──crash flag / invariant violation / stalled heartbeat──▶
//   kQuarantined (engine stopped, waiting for worker quiescence) ──▶
//     restore budget left:  rebuild + restore  ──▶ kHealthy
//     budget exhausted or restore failed: shed ──▶ kShed (sessions
//       relocated round-robin to live shards, shard stays down)
//
// The tick reads ONLY the heartbeat atomics a shard's hook publishes in
// on_frame_end (plus Shard's own atomics) — never the engine's plain
// fields — so the supervisor is data-race-free against running workers.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/core/server.hpp"
#include "src/recovery/checkpoint.hpp"
#include "src/vthread/platform.hpp"

namespace qserv::shard {

class ShardManager;

enum class ShardState : uint8_t { kHealthy, kQuarantined, kShed };
const char* shard_state_name(ShardState s);

class ShardSupervisor {
 public:
  ShardSupervisor(vt::Platform& platform, ShardManager& mgr);
  ~ShardSupervisor();

  // Arms the periodic tick. Call after every shard has started.
  void start();
  // Disarms: the current tick (if any) is the last. Safe to call twice.
  void request_stop();

  // Per-shard supervision record. Plain fields written by the tick; read
  // them only after the run has stopped (bench/test harvest) or from the
  // tick itself.
  struct Report {
    ShardState state = ShardState::kHealthy;
    int restores = 0;          // successful supervised restorations
    uint64_t escalations = 0;  // healthy -> quarantined transitions
    double last_pause_ms = 0.0;
    bool last_used_tail = false;
    core::Server::RestoreStats last_stats{};
    recovery::LoadError last_error{};
    uint64_t shed_sessions = 0;  // transfers relocated by the shed path
  };
  const Report& report(int shard) const { return track_[shard].report; }

  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

 private:
  void tick();
  void schedule_next();
  void supervise(int i, int64_t now_ns);
  void do_shed(int i);

  struct Track {
    Report report;
  };

  vt::Platform& platform_;
  ShardManager& mgr_;
  std::vector<Track> track_;
  // Round-robin cursor for spreading shed sessions over live shards.
  int shed_cursor_ = 0;
  std::atomic<uint64_t> ticks_{0};
  bool started_ = false;
  // Atomic: request_stop() may come from the harness thread while a tick
  // is in flight on the platform's timer context.
  std::atomic<bool> stop_{false};

  // Liveness gate shared with every scheduled tick callback. On the real
  // platform a pending call_after survives join_all() (only *in-flight*
  // timer callbacks are waited for), so a late tick can fire after this
  // supervisor — and the whole ShardManager — is gone. The callback
  // captures the gate by shared_ptr, locks it, and bails out if the
  // destructor already marked it dead; the destructor's lock also blocks
  // until any concurrently running tick finishes.
  struct TickGate {
    std::mutex mu;
    bool alive = true;
  };
  std::shared_ptr<TickGate> gate_;
};

}  // namespace qserv::shard
