#include "src/shard/router.hpp"

#include <algorithm>

#include "src/util/check.hpp"

namespace qserv::shard {

ShardRouter::ShardRouter(const Aabb& bounds, int shards, float margin)
    : lo_(bounds.mins.x),
      width_((bounds.maxs.x - bounds.mins.x) / static_cast<float>(shards)),
      shards_(shards),
      margin_(margin) {
  QSERV_CHECK(shards >= 1);
  QSERV_CHECK(width_ > 0.0f);
  QSERV_CHECK(margin >= 0.0f);
}

int ShardRouter::shard_for(const Vec3& p) const {
  const int i = static_cast<int>((p.x - lo_) / width_);
  return std::clamp(i, 0, shards_ - 1);
}

int ShardRouter::home_for(int current, const Vec3& p) const {
  if (current < 0 || current >= shards_) return shard_for(p);
  // Inside the slab widened by the margin: stay put.
  if (p.x >= slab_lo(current) - margin_ && p.x <= slab_hi(current) + margin_)
    return current;
  return shard_for(p);
}

float ShardRouter::slab_lo(int shard) const {
  return lo_ + width_ * static_cast<float>(shard);
}

float ShardRouter::slab_hi(int shard) const {
  return lo_ + width_ * static_cast<float>(shard + 1);
}

}  // namespace qserv::shard
