// Cross-shard handoff mailbox: the only way session state moves between
// engines. The source shard's master window posts a SessionTransfer; the
// destination shard's master window drains its mailbox and adopts. Both
// ends are master windows — single-threaded per engine — so the mutex
// only arbitrates *between* engines (and the supervisor's shed/reclaim
// paths). Depth is bounded: a partitioned or quarantined destination must
// not let its mailbox grow without limit, so post() refuses once the
// capacity is reached (the manager counts the refusal as an overflow
// shed), and the supervisor reclaims entries that sat past the adopt
// timeout via take_older_than().
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "src/core/server.hpp"
#include "src/vthread/platform.hpp"

namespace qserv::shard {

class HandoffMailbox {
 public:
  // `capacity` == 0 means unbounded.
  HandoffMailbox(vt::Platform& platform, size_t capacity)
      : mu_(platform.make_mutex("shard-mailbox")), capacity_(capacity) {}

  // False when the mailbox is at capacity; `t` is left untouched so the
  // caller can account for (or re-route) the refused transfer.
  bool post(core::Server::SessionTransfer&& t) {
    vt::LockGuard g(*mu_);
    if (capacity_ > 0 && items_.size() >= capacity_) return false;
    items_.push_back(std::move(t));
    return true;
  }

  // Takes everything currently queued.
  std::vector<core::Server::SessionTransfer> drain() {
    vt::LockGuard g(*mu_);
    std::vector<core::Server::SessionTransfer> out;
    out.swap(items_);
    return out;
  }

  // Takes only the entries posted at or before `cutoff_ns` (queue order
  // preserved); the supervisor's stale-handoff reclaim.
  std::vector<core::Server::SessionTransfer> take_older_than(
      int64_t cutoff_ns) {
    vt::LockGuard g(*mu_);
    std::vector<core::Server::SessionTransfer> out;
    for (auto it = items_.begin(); it != items_.end();) {
      if (it->posted_at_ns <= cutoff_ns) {
        out.push_back(std::move(*it));
        it = items_.erase(it);
      } else {
        ++it;
      }
    }
    return out;
  }

  bool empty() const {
    vt::LockGuard g(*mu_);
    return items_.empty();
  }

  size_t size() const {
    vt::LockGuard g(*mu_);
    return items_.size();
  }

 private:
  std::unique_ptr<vt::Mutex> mu_;
  size_t capacity_;
  std::vector<core::Server::SessionTransfer> items_;
};

}  // namespace qserv::shard
