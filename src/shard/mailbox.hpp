// Cross-shard handoff mailbox: the only way session state moves between
// engines. The source shard's master window posts a SessionTransfer; the
// destination shard's master window drains its mailbox and adopts. Both
// ends are master windows — single-threaded per engine — so the mutex
// only arbitrates *between* engines (and the supervisor's shed path).
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "src/core/server.hpp"
#include "src/vthread/platform.hpp"

namespace qserv::shard {

class HandoffMailbox {
 public:
  explicit HandoffMailbox(vt::Platform& platform)
      : mu_(platform.make_mutex("shard-mailbox")) {}

  void post(core::Server::SessionTransfer t) {
    vt::LockGuard g(*mu_);
    items_.push_back(std::move(t));
  }

  // Takes everything currently queued.
  std::vector<core::Server::SessionTransfer> drain() {
    vt::LockGuard g(*mu_);
    std::vector<core::Server::SessionTransfer> out;
    out.swap(items_);
    return out;
  }

  bool empty() const {
    vt::LockGuard g(*mu_);
    return items_.empty();
  }

 private:
  std::unique_ptr<vt::Mutex> mu_;
  std::vector<core::Server::SessionTransfer> items_;
};

}  // namespace qserv::shard
