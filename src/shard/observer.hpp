// Fleet observation seam: the shard layer reports its interesting
// moments — engine generations coming up, supervisor state transitions,
// cross-shard session handoffs — through this interface without knowing
// anything about tracers or metric registries. obs::FleetObs implements
// it; the shard layer stays dependency-free and a fleet without an
// observer pays one null-check per event.
//
// Calling contexts (single-writer discipline for trace tracks hangs off
// these):
//  - on_engine_built: supervisor timer context, engine not yet started
//    (initial generations are attached directly by the plane instead).
//  - on_escalation / on_restore / on_shed / on_shed_handoff: supervisor
//    timer context.
//  - on_handoff_out: source engine's master window.
//  - on_handoff_in: destination engine's master window.
#pragma once

#include <cstdint>

namespace qserv::core {
class ParallelServer;
}

namespace qserv::shard {

class FleetObserver {
 public:
  virtual ~FleetObserver() = default;

  // A supervisor-rebuilt engine generation exists but has not started:
  // re-attach per-engine instrumentation here or the restored shard goes
  // dark (no spans, no frame histograms) for the rest of the run.
  virtual void on_engine_built(int shard, core::ParallelServer& server) = 0;

  // kHealthy -> kQuarantined; `why` is a static string: "crash-flag",
  // "invariant-violation" or "stale-heartbeat".
  virtual void on_escalation(int shard, const char* why) = 0;
  // Quarantine exit through rebuild+restore (ok == false means the
  // restore failed and the supervisor is about to shed instead). `mode`
  // names the fallback-chain step that produced the new generation:
  // "tail-replay", "checkpoint-only" or "fresh-rebuild".
  virtual void on_restore(int shard, bool ok, bool used_tail,
                          uint64_t tail_frames, double pause_ms,
                          const char* mode) = 0;
  // Quarantine exit through shedding: `sessions` relocated, shard down.
  // `why` is a static string: "budget" (max_restores exhausted),
  // "crash-loop" (circuit breaker tripped), "quarantine-cap" (too many
  // simultaneous quarantines; lowest-priority shard degraded away) or
  // "restore-failed".
  virtual void on_shed(int shard, uint64_t sessions, const char* why) = 0;

  // Session `flow` extracted from `src`, queued toward `dst`.
  virtual void on_handoff_out(int src, int dst, uint64_t flow) = 0;
  // Same, but originated by the supervisor's shed path (timer context,
  // `src`'s engine is quiesced and being dismantled).
  virtual void on_shed_handoff(int src, int dst, uint64_t flow) = 0;
  // Session `flow` adopted by `dst` (which may differ from the intended
  // target when the mailbox forwarded past a down shard).
  virtual void on_handoff_in(int dst, uint64_t flow) = 0;

  // --- containment events (default no-op: optional to observe) ---
  // Session `flow`, stranded at `at_shard`, returned toward `to_shard`.
  // `supervisor_ctx` distinguishes the two callers for track ownership:
  // true = the supervisor's adopt-timeout reclaim (timer context, writes
  // at_shard's supervisor track), false = at_shard's own master window
  // exhausting the adopt retry budget (writes its handoff track).
  virtual void on_handoff_returned(int at_shard, int to_shard,
                                   uint64_t flow, bool supervisor_ctx) {
    (void)at_shard, (void)to_shard, (void)flow, (void)supervisor_ctx;
  }
  // A post against `target`'s full mailbox dropped session `flow` (an
  // overflow shed). May fire from any master window or the supervisor —
  // metrics only, no trace track is written.
  virtual void on_handoff_overflow(int target, uint64_t flow) {
    (void)target, (void)flow;
  }
};

}  // namespace qserv::shard
