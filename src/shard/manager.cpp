#include "src/shard/manager.hpp"

#include <string>
#include <utility>

#include "src/spatial/map.hpp"
#include "src/util/check.hpp"
#include "src/util/rng.hpp"

namespace qserv::shard {

ShardManager::ShardManager(vt::Platform& platform, net::Transport& net,
                           const spatial::GameMap& map, Config cfg)
    : platform_(platform),
      net_(net),
      map_(map),
      cfg_(std::move(cfg)),
      router_(map.bounds, cfg_.shards, cfg_.boundary_margin) {
  QSERV_CHECK(cfg_.shards >= 1);
  // A shard's worker ports must fit inside its stride or two shards
  // would claim overlapping ports on the shared network.
  QSERV_CHECK(cfg_.server.threads <= static_cast<int>(cfg_.port_stride));
  shards_.reserve(static_cast<size_t>(cfg_.shards));
  mailboxes_.reserve(static_cast<size_t>(cfg_.shards));
  for (int i = 0; i < cfg_.shards; ++i) {
    core::ServerConfig sc = cfg_.server;
    sc.base_port =
        static_cast<uint16_t>(cfg_.base_port + i * cfg_.port_stride);
    // Independent RNG stream per shard: one shard's world events cannot
    // perturb another's, so an unaffected shard replays bit-identically
    // across runs regardless of what its neighbors went through.
    sc.seed = derive_seed(cfg_.seed, streams::kShardBase +
                                         static_cast<uint64_t>(i));
    if (sc.recovery.enabled) {
      sc.recovery.dump_dir = (sc.recovery.dump_dir.empty()
                                  ? std::string()
                                  : sc.recovery.dump_dir + "/") +
                             "shard-" + std::to_string(i);
    }
    mailboxes_.push_back(
        std::make_unique<HandoffMailbox>(platform_, cfg_.mailbox_capacity));
    shards_.push_back(
        std::make_unique<Shard>(platform_, net_, map_, *this, sc, i));
  }
  supervisor_ = std::make_unique<ShardSupervisor>(platform_, *this);
}

ShardManager::~ShardManager() = default;

void ShardManager::start() {
  for (auto& s : shards_) s->start();
  supervisor_->start();
}

void ShardManager::request_stop() {
  supervisor_->request_stop();
  for (auto& s : shards_) s->request_stop();
}

uint16_t ShardManager::join_port(int ordinal, int expected_players) const {
  const int n = shards();
  const int home = ordinal % n;
  const int within = ordinal / n;
  const int expected_within = (expected_players + n - 1) / n;
  QSERV_CHECK(!shards_[static_cast<size_t>(home)]->down());
  return shards_[static_cast<size_t>(home)]->server()->port_for_client(
      within, std::max(1, expected_within));
}

bool ShardManager::post_handoff(int target, core::Server::SessionTransfer t) {
  const int n = shards();
  t.posted_at_ns = platform_.now().ns;
  for (int k = 0; k < n; ++k) {
    const int cand = (target + k) % n;
    if (shards_[static_cast<size_t>(cand)]->down()) continue;
    if (mailboxes_[static_cast<size_t>(cand)]->post(std::move(t)))
      return true;
    // Mailbox at capacity: an overflow shed. The session is dropped here
    // rather than forwarded — spilling a backed-up shard's transfers onto
    // its neighbor would propagate the backlog across the fleet.
    overflow_sheds_.fetch_add(1, std::memory_order_relaxed);
    if (observer_ != nullptr)
      observer_->on_handoff_overflow(cand, t.flow_id);
    return false;
  }
  overflow_sheds_.fetch_add(1, std::memory_order_relaxed);
  return false;  // whole fleet down
}

int ShardManager::total_connected() const {
  int total = 0;
  for (const auto& s : shards_) {
    if (!s->down() && s->server() != nullptr)
      total += s->server()->connected_clients();
  }
  return total;
}

}  // namespace qserv::shard
