#include "src/shard/engine_hook.hpp"

#include <atomic>
#include <utility>
#include <vector>

#include "src/shard/manager.hpp"
#include "src/sim/entity.hpp"
#include "src/sim/world.hpp"

namespace qserv::shard {

ShardEngineHook::ShardEngineHook(ShardManager& mgr, int index,
                                 core::Server& server)
    : mgr_(mgr), index_(index), server_(server) {}

void ShardEngineHook::on_master_window(int /*tid*/,
                                       vt::TimePoint /*frame_start*/,
                                       core::ThreadStats& /*st*/) {
  adopt_inbound();
  if (mgr_.config().handoff_enabled) migrate_outbound();
  rearm_redirects();
}

void ShardEngineHook::on_frame_end(vt::TimePoint /*frame_start*/,
                                   int /*moves*/, core::ThreadStats& /*st*/) {
  // Master context, workers at the barrier: plain engine reads are safe
  // here, and publishing them as the shard's heartbeat atomics is the
  // ONLY way the supervisor may observe this engine from its own thread.
  mgr_.shard(index_).publish_heartbeat(
      server_.frames(), server_.platform().now().ns,
      server_.connected_clients(), server_.invariant_violations());
}

void ShardEngineHook::on_idle_wait(int /*tid*/) {
  // Any worker may land here concurrently; the beat is a single atomic
  // timestamp store. Without this, an engine starved of traffic (e.g. a
  // partition severing all of its clients) would stop publishing frame-end
  // beats and read as wedged to the supervisor.
  mgr_.shard(index_).publish_idle_beat(server_.platform().now().ns);
}

void ShardEngineHook::adopt_inbound() {
  HandoffMailbox& box = mgr_.mailbox(index_);
  if (retry_.empty() && box.empty()) return;
  std::vector<core::Server::SessionTransfer> incoming;
  incoming.swap(retry_);
  for (core::Server::SessionTransfer& t : box.drain())
    incoming.push_back(std::move(t));
  for (core::Server::SessionTransfer& t : incoming) {
    if (server_.adopt_session(t)) {
      if (t.flow_id != 0) {
        if (FleetObserver* o = mgr_.observer(); o != nullptr)
          o->on_handoff_in(index_, t.flow_id);
      }
      // Arm the redirect with the POST-adopt clock: adopt_session stamps
      // the slot's last_heard_ns with now(), which under virtual time may
      // already be past this window's start, and rearm_redirects drops
      // entries once heard > armed-at.
      pending_redirects_.emplace_back(t.remote_port,
                                      server_.platform().now().ns);
    } else if (++t.adopt_retries <= mgr_.config().handoff_retry_budget ||
               t.source_shard < 0 || t.source_shard == index_ ||
               t.source_shard >= mgr_.shards() ||
               mgr_.shard(t.source_shard).down()) {
      // Registry momentarily full (or port briefly still bound): hold
      // the session and retry next window rather than lose the client.
      retry_.push_back(std::move(t));
    } else {
      // Retry budget exhausted and the source shard is still alive:
      // bounce the session back where it came from instead of stranding
      // it in this shard's retry queue forever.
      const int back = t.source_shard;
      t.adopt_retries = 0;
      t.source_shard = index_;
      mgr_.count_handoff_return();
      if (FleetObserver* o = mgr_.observer(); o != nullptr)
        o->on_handoff_returned(index_, back, t.flow_id,
                               /*supervisor_ctx=*/false);
      mgr_.post_handoff(back, std::move(t));
    }
  }
}

void ShardEngineHook::migrate_outbound() {
  // Two phases to respect the non-recursive registry mutex: collect
  // (port, entity) candidates under the lock, then extract_session —
  // which re-locks internally — per crossing session.
  std::vector<std::pair<uint16_t, uint32_t>> candidates;
  {
    core::ClientRegistry& reg = server_.registry();
    vt::LockGuard g(reg.mutex());
    for (const core::ClientSlot& cl : reg.slots()) {
      if (!cl.in_use || cl.pending_spawn || cl.pending_disconnect ||
          cl.awaiting_resume)
        continue;
      candidates.emplace_back(cl.remote_port, cl.entity_id);
    }
  }
  const ShardRouter& router = mgr_.router();
  for (const auto& [port, entity_id] : candidates) {
    const sim::Entity* e = server_.world().get(entity_id);
    if (e == nullptr) continue;
    const int target = router.home_for(index_, e->origin);
    if (target == index_) continue;
    // The owner of that slab is down (shed): keep serving the session
    // here rather than bouncing it around the fleet.
    if (mgr_.shard(target).down()) continue;
    core::Server::SessionTransfer t;
    if (server_.extract_session(port, t)) {
      t.source_shard = index_;  // return address for containment paths
      if (FleetObserver* o = mgr_.observer(); o != nullptr) {
        t.flow_id = mgr_.next_flow_id();
        o->on_handoff_out(index_, target, t.flow_id);
      }
      mgr_.post_handoff(target, std::move(t));
    }
  }
}

void ShardEngineHook::rearm_redirects() {
  if (pending_redirects_.empty()) return;
  core::ClientRegistry& reg = server_.registry();
  vt::LockGuard g(reg.mutex());
  std::erase_if(pending_redirects_, [&](const std::pair<uint16_t, int64_t>&
                                            pr) {
    const int idx = reg.index_of_port_locked(pr.first);
    if (idx < 0) return true;  // migrated again or evicted; stop re-arming
    core::ClientSlot& cl = reg.slot(idx);
    if (!cl.in_use) return true;
    const int64_t heard =
        std::atomic_ref<int64_t>(cl.last_heard_ns).load(
            std::memory_order_relaxed);
    if (heard > pr.second) return true;  // peer now addresses this engine
    // Teaching snapshot may have been lost: keep re-arming the one-shot
    // port notification (with a queued reply) until the peer shows up.
    cl.notify_port = true;
    cl.pending_reply = true;
    return false;
  });
}

}  // namespace qserv::shard
