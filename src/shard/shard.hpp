// One shard: a failure domain wrapping one ParallelServer *generation*.
// The Shard object itself is permanent for the run; the engine inside it
// is rebuilt by the supervisor after a crash — checkpoint + journal tail
// are captured from the dead generation, a fresh engine is constructed on
// the same ports/seed, restored, and started. Heartbeat state lives here
// (not in the engine) as atomics, because the supervisor reads it from
// outside the engine's threads while the master window publishes it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/core/parallel_server.hpp"
#include "src/recovery/checkpoint.hpp"
#include "src/shard/engine_hook.hpp"

namespace qserv::shard {

class ShardManager;

// Which step of the checkpoint-restore fallback chain produced the new
// engine generation:
//   tail-replay      checkpoint + digest-verified journal tail
//   checkpoint-only  checkpoint restored, tail unusable (diverged/absent)
//   fresh-rebuild    checkpoint unusable (corrupt/torn) or never taken;
//                    the engine comes back empty, clients reconnect via
//                    the silence backstop and every rejoin is served a
//                    forced full snapshot (baseline 0 by construction)
enum class RestoreMode : uint8_t {
  kNone = 0,
  kTailReplay,
  kCheckpointOnly,
  kFreshRebuild,
};
const char* restore_mode_name(RestoreMode m);

class Shard {
 public:
  Shard(vt::Platform& platform, net::Transport& net,
        const spatial::GameMap& map, ShardManager& mgr,
        core::ServerConfig cfg, int index);
  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  // Constructs a fresh engine generation + hook (not started). Called by
  // the manager at setup and by rebuild_and_restore() after a failure.
  void build();
  void start();
  void request_stop();

  int index() const { return index_; }
  core::ParallelServer* server() { return server_.get(); }
  const core::ParallelServer* server() const { return server_.get(); }
  const core::ServerConfig& engine_config() const { return cfg_; }

  // A shed shard stays down: no engine, sessions relocated.
  bool down() const { return down_.load(std::memory_order_acquire); }

  // --- fault injection ---
  // Models a shard crash: raises the crash flag (the supervisor's
  // escalation cue) and halts the engine's loops. State reachable
  // afterwards is only what recovery persisted — the supervisor restores
  // from checkpoint + journal, never from the dead engine's live world.
  void inject_crash();
  bool crash_flagged() const {
    return crashed_.load(std::memory_order_acquire);
  }
  // Chaos hook: flip one byte in the next captured checkpoint image —
  // models a torn/corrupted on-disk image. The loader's content checksum
  // rejects it and the restore falls through to a fresh rebuild.
  void corrupt_next_capture() {
    corrupt_next_.store(true, std::memory_order_release);
  }

  // --- heartbeat (hook publishes from the master window) ---
  void publish_heartbeat(uint64_t frames, int64_t now_ns, int clients,
                         uint64_t invariant_violations);
  // Liveness-only beat from a worker's idle select() timeout: a starved
  // engine (network partition, no traffic) runs no frames at all, but it
  // is alive — only the timestamp refreshes, the frame/client/invariant
  // fields keep their last frame-end values.
  void publish_idle_beat(int64_t now_ns) {
    beat_at_ns_.store(now_ns, std::memory_order_release);
  }
  uint64_t beat_frames() const {
    return beat_frames_.load(std::memory_order_acquire);
  }
  int64_t beat_at_ns() const {
    return beat_at_ns_.load(std::memory_order_acquire);
  }
  int beat_clients() const {
    return beat_clients_.load(std::memory_order_acquire);
  }
  uint64_t beat_invariants() const {
    return beat_invariants_.load(std::memory_order_acquire);
  }

  // True once every worker fiber of the current generation has exited (a
  // stopped or never-started engine is quiescent).
  bool quiesced() const {
    return server_ == nullptr || server_->active_workers() == 0;
  }

  // Successful supervised restorations of this shard so far.
  int restores() const { return restores_; }

  struct RestoreOutcome {
    bool ok = false;
    // Journal-tail replay succeeded (false = checkpoint-only fallback or
    // no checkpoint existed yet and the engine came back empty).
    bool used_tail = false;
    bool had_checkpoint = false;
    RestoreMode mode = RestoreMode::kNone;
    double pause_ms = 0.0;  // host-clock rebuild+restore cost
    core::Server::RestoreStats stats{};
    // First error hit walking the fallback chain (kNone when the first
    // step succeeded); the chain still ends in a live generation.
    recovery::LoadError error{};
  };
  // Quarantine exit path. Caller must see quiesced(). Captures the dead
  // generation's checkpoint + journal, rebuilds the engine and walks the
  // restore fallback chain — digest-verified tail replay, checkpoint-only
  // on kReplayDiverged, fresh empty rebuild when the checkpoint itself is
  // unusable (checksum/corrupt/truncated) or was never taken — then
  // starts the new generation. Every step is reported through the fleet
  // observer (on_restore carries the mode) and the supervisor report.
  RestoreOutcome rebuild_and_restore();

  // Shed path: recovers the dead generation's sessions into transfers
  // for neighbor shards (checkpoint + journal tail through a throwaway
  // restored engine), then marks the shard permanently down. Empty when
  // no checkpoint existed.
  std::vector<core::Server::SessionTransfer> shed();

 private:
  // (checkpoint image, journal image) of the current generation; both
  // empty when recovery never checkpointed.
  std::pair<std::vector<uint8_t>, std::vector<uint8_t>> capture_images();

  vt::Platform& platform_;
  net::Transport& net_;
  const spatial::GameMap& map_;
  ShardManager& mgr_;
  core::ServerConfig cfg_;
  int index_;

  std::unique_ptr<core::ParallelServer> server_;
  std::unique_ptr<ShardEngineHook> hook_;

  // Stash of the last real capture; survives a failed-restore generation
  // so the shed path can still reach the dead engine's state.
  std::vector<uint8_t> cap_ckpt_;
  std::vector<uint8_t> cap_jrnl_;

  std::atomic<bool> crashed_{false};
  std::atomic<bool> corrupt_next_{false};
  std::atomic<bool> down_{false};
  std::atomic<uint64_t> beat_frames_{0};
  std::atomic<int64_t> beat_at_ns_{0};
  std::atomic<int> beat_clients_{0};
  std::atomic<uint64_t> beat_invariants_{0};
  int restores_ = 0;
};

}  // namespace qserv::shard
