// Multi-shard engine: N independent ClientRegistry+FramePipeline engines
// in one process, each owning an X-slab of the map (ShardRouter), wired
// together by handoff mailboxes and watched by a ShardSupervisor. Each
// shard gets its own port block, derived RNG seed, and recovery namespace
// — a crash in one shard's failure domain never touches another's state.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/shard/config.hpp"
#include "src/shard/mailbox.hpp"
#include "src/shard/observer.hpp"
#include "src/shard/router.hpp"
#include "src/shard/shard.hpp"
#include "src/shard/supervisor.hpp"

namespace qserv::shard {

class ShardManager {
 public:
  ShardManager(vt::Platform& platform, net::Transport& net,
               const spatial::GameMap& map, Config cfg);
  ~ShardManager();

  ShardManager(const ShardManager&) = delete;
  ShardManager& operator=(const ShardManager&) = delete;

  // Starts every shard engine, then arms the supervisor.
  void start();
  // Disarms the supervisor first (so a late tick cannot resurrect a
  // stopping engine), then stops the shards.
  void request_stop();

  const Config& config() const { return cfg_; }
  const ShardRouter& router() const { return router_; }
  vt::Platform& platform() { return platform_; }

  int shards() const { return static_cast<int>(shards_.size()); }
  Shard& shard(int i) { return *shards_[i]; }
  const Shard& shard(int i) const { return *shards_[i]; }
  HandoffMailbox& mailbox(int i) { return *mailboxes_[i]; }
  ShardSupervisor& supervisor() { return *supervisor_; }
  const ShardSupervisor& supervisor() const { return *supervisor_; }

  // Initial join endpoint for client ordinal `i` of `expected` total:
  // clients stripe across shards, then block-assign within the shard's
  // worker threads (the §3.1 static assignment, per shard).
  uint16_t join_port(int ordinal, int expected_players) const;

  // Queues a session for adoption by `target`'s next master window,
  // stamping posted_at_ns for the supervisor's adopt-timeout reclaim. A
  // down target forwards to the next live shard. Returns false — and
  // counts an overflow shed — when the candidate's mailbox is at capacity
  // or no live shard remains (the session is dropped, not stranded).
  bool post_handoff(int target, core::Server::SessionTransfer t);

  // Convenience fault injection: crash shard `i`'s engine.
  void crash_shard(int i) { shards_[i]->inject_crash(); }

  // --- fleet observation (obs::FleetObs) ---
  // Install before start(); `o` must outlive the fleet. Null = unobserved
  // (every emission site is one pointer check).
  void set_observer(FleetObserver* o) { observer_ = o; }
  FleetObserver* observer() const { return observer_; }
  // Next causal-trace flow id (1-based; 0 means untraced). Called from
  // any master window, so the counter is atomic.
  uint64_t next_flow_id() {
    return flow_ids_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  uint64_t flows_issued() const {
    return flow_ids_.load(std::memory_order_relaxed);
  }

  // --- containment accounting ---
  // Sessions dropped because every candidate mailbox was at capacity (or
  // the whole fleet was down): the overflow-shed count.
  uint64_t overflow_sheds() const {
    return overflow_sheds_.load(std::memory_order_relaxed);
  }
  // Sessions bounced back toward their source shard instead of being left
  // stranded (supervisor adopt-timeout reclaim + adopt retry-budget
  // exhaustion). Incremented via count_handoff_return().
  uint64_t handoffs_returned() const {
    return handoffs_returned_.load(std::memory_order_relaxed);
  }
  void count_handoff_return() {
    handoffs_returned_.fetch_add(1, std::memory_order_relaxed);
  }

  // Connected clients summed over live shards. Quiescent-state read —
  // call only while the shards are stopped (pre-start / post-stop).
  int total_connected() const;

 private:
  vt::Platform& platform_;
  net::Transport& net_;
  const spatial::GameMap& map_;
  Config cfg_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<HandoffMailbox>> mailboxes_;
  std::unique_ptr<ShardSupervisor> supervisor_;
  FleetObserver* observer_ = nullptr;
  std::atomic<uint64_t> flow_ids_{0};
  std::atomic<uint64_t> overflow_sheds_{0};
  std::atomic<uint64_t> handoffs_returned_{0};
};

}  // namespace qserv::shard
