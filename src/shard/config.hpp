// Multi-shard engine configuration. One process hosts N independent
// ClientRegistry+FramePipeline engines ("shards"), each owning an X-axis
// slab of the map, each with its own port block, RNG stream, checkpoint /
// journal namespace and failure domain. The knobs here size the fleet and
// tune the supervisor's escalation policy; everything engine-level nests
// in `server`, which the manager clones per shard with the derived
// fields (base_port, seed, dump_dir) overridden.
#pragma once

#include <cstdint>
#include <string>

#include "src/core/config.hpp"
#include "src/util/rng.hpp"
#include "src/vthread/time.hpp"

namespace qserv::shard {

struct Config {
  // Fleet shape. Shard i's engine listens on
  // base_port + i*port_stride .. + (threads-1); the stride bounds how
  // many worker ports one shard may claim.
  int shards = 4;
  uint16_t base_port = 27500;
  uint16_t port_stride = 64;

  // Cross-shard session handoff. A player whose entity crosses its home
  // slab's boundary by more than `boundary_margin` world units is
  // extracted in the master window and mailed to the neighbor owning its
  // position (hysteresis: the margin keeps a player oscillating on the
  // line from ping-ponging between engines every frame). Set the margin
  // wider than the map to pin sessions to their join shard (digest
  // isolation benches).
  bool handoff_enabled = true;
  float boundary_margin = 24.0f;

  // Supervisor cadence and escalation policy. A shard whose frame
  // counter stops advancing for `heartbeat_timeout` while it still has
  // connected clients — or that reports invariant violations, or whose
  // crash flag is raised — is quarantined and restored from its last
  // checkpoint + journal tail. After `max_restores` restorations (or a
  // restore failure) the shard is shed instead: its sessions are handed
  // to neighbor shards and its engine stays down.
  vt::Duration supervise_interval = vt::millis(10);
  vt::Duration heartbeat_timeout = vt::millis(100);
  int max_restores = 2;

  // --- cascading-failure containment ---
  // Crash-loop circuit breaker: the first restore of a quarantine is
  // immediate, the k-th thereafter waits restore_backoff * 2^(k-1)
  // (clamped to restore_backoff_max) of virtual time. Independently of
  // the total budget above, crash_loop_max_rebuilds rebuilds inside
  // crash_loop_window trips the breaker: the shard is shed for good
  // instead of being restored forever.
  vt::Duration restore_backoff = vt::millis(25);
  vt::Duration restore_backoff_max = vt::seconds(2);
  vt::Duration crash_loop_window = vt::seconds(10);
  int crash_loop_max_rebuilds = 4;

  // Handoff containment. A shard's inbound mailbox holds at most
  // mailbox_capacity transfers (0 = unbounded); a post against a full
  // mailbox is an overflow shed — the session is dropped and counted,
  // never queued without bound toward a dead destination. Transfers
  // stranded for adopt_timeout in the mailbox of a quarantined/down
  // shard are returned to their source shard by the supervisor (0 =
  // never reclaim). A destination that keeps refusing adoption
  // (registry full) hands the session back to its source after
  // handoff_retry_budget retries (0 = retry forever).
  size_t mailbox_capacity = 1024;
  vt::Duration adopt_timeout = vt::millis(500);
  int handoff_retry_budget = 32;

  // Fleet-level quarantine cap: at most max_concurrent_restores rebuilds
  // per supervisor tick (simultaneous failures recover staggered, never
  // pausing the whole fleet at once), and when more than quarantine_cap
  // shards sit in quarantine together the lowest-priority one (fewest
  // heartbeat clients, then highest index) is shed instead of restored.
  int max_concurrent_restores = 1;
  int quarantine_cap = 2;

  // Per-engine template. The manager overrides base_port, seed
  // (derive_seed(seed, streams::kShardBase + i)) and recovery.dump_dir
  // (suffix "/shard-<i>") per shard; every other field applies as-is.
  core::ServerConfig server{};

  // Root seed of the whole fleet (also the virtual network's, by harness
  // convention).
  uint64_t seed = 1;
};

}  // namespace qserv::shard
