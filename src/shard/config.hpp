// Multi-shard engine configuration. One process hosts N independent
// ClientRegistry+FramePipeline engines ("shards"), each owning an X-axis
// slab of the map, each with its own port block, RNG stream, checkpoint /
// journal namespace and failure domain. The knobs here size the fleet and
// tune the supervisor's escalation policy; everything engine-level nests
// in `server`, which the manager clones per shard with the derived
// fields (base_port, seed, dump_dir) overridden.
#pragma once

#include <cstdint>
#include <string>

#include "src/core/config.hpp"
#include "src/util/rng.hpp"
#include "src/vthread/time.hpp"

namespace qserv::shard {

struct Config {
  // Fleet shape. Shard i's engine listens on
  // base_port + i*port_stride .. + (threads-1); the stride bounds how
  // many worker ports one shard may claim.
  int shards = 4;
  uint16_t base_port = 27500;
  uint16_t port_stride = 64;

  // Cross-shard session handoff. A player whose entity crosses its home
  // slab's boundary by more than `boundary_margin` world units is
  // extracted in the master window and mailed to the neighbor owning its
  // position (hysteresis: the margin keeps a player oscillating on the
  // line from ping-ponging between engines every frame). Set the margin
  // wider than the map to pin sessions to their join shard (digest
  // isolation benches).
  bool handoff_enabled = true;
  float boundary_margin = 24.0f;

  // Supervisor cadence and escalation policy. A shard whose frame
  // counter stops advancing for `heartbeat_timeout` while it still has
  // connected clients — or that reports invariant violations, or whose
  // crash flag is raised — is quarantined and restored from its last
  // checkpoint + journal tail. After `max_restores` restorations (or a
  // restore failure) the shard is shed instead: its sessions are handed
  // to neighbor shards and its engine stays down.
  vt::Duration supervise_interval = vt::millis(10);
  vt::Duration heartbeat_timeout = vt::millis(100);
  int max_restores = 2;

  // Per-engine template. The manager overrides base_port, seed
  // (derive_seed(seed, streams::kShardBase + i)) and recovery.dump_dir
  // (suffix "/shard-<i>") per shard; every other field applies as-is.
  core::ServerConfig server{};

  // Root seed of the whole fleet (also the virtual network's, by harness
  // convention).
  uint64_t seed = 1;
};

}  // namespace qserv::shard
