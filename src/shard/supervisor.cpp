#include "src/shard/supervisor.hpp"

#include <utility>

#include "src/shard/manager.hpp"
#include "src/util/check.hpp"

namespace qserv::shard {

const char* shard_state_name(ShardState s) {
  switch (s) {
    case ShardState::kHealthy:
      return "healthy";
    case ShardState::kQuarantined:
      return "quarantined";
    case ShardState::kShed:
      return "shed";
  }
  return "?";
}

ShardSupervisor::ShardSupervisor(vt::Platform& platform, ShardManager& mgr)
    : platform_(platform), mgr_(mgr), gate_(std::make_shared<TickGate>()) {
  track_.resize(static_cast<size_t>(mgr_.shards()));
}

ShardSupervisor::~ShardSupervisor() {
  stop_.store(true, std::memory_order_release);
  // Blocks until a concurrently running tick drains, then turns every
  // still-pending timer callback into a no-op (they keep the gate alive
  // via shared_ptr, so the late lock itself is safe).
  std::lock_guard<std::mutex> lk(gate_->mu);
  gate_->alive = false;
}

void ShardSupervisor::start() {
  QSERV_CHECK(!started_);
  started_ = true;
  schedule_next();
}

void ShardSupervisor::request_stop() {
  stop_.store(true, std::memory_order_release);
}

void ShardSupervisor::schedule_next() {
  // Self-rescheduling timer: once stopped we must NOT re-arm, or a
  // simulated platform's run() (which drains the event queue to empty)
  // never returns.
  if (stop_.load(std::memory_order_acquire)) return;
  platform_.call_after(mgr_.config().supervise_interval,
                       [this, gate = gate_] {
                         std::lock_guard<std::mutex> lk(gate->mu);
                         if (!gate->alive) return;
                         tick();
                       });
}

void ShardSupervisor::tick() {
  if (stop_.load(std::memory_order_acquire)) return;
  ticks_.fetch_add(1, std::memory_order_relaxed);
  const int64_t now_ns = platform_.now().ns;
  for (int i = 0; i < mgr_.shards(); ++i) supervise(i, now_ns);
  schedule_next();
}

void ShardSupervisor::supervise(int i, int64_t now_ns) {
  Shard& s = mgr_.shard(i);
  Report& r = track_[static_cast<size_t>(i)].report;
  if (s.down()) return;
  switch (r.state) {
    case ShardState::kHealthy: {
      bool escalate = false;
      const char* why = nullptr;
      if (s.crash_flagged() || s.beat_invariants() > 0) {
        escalate = true;
        why = s.crash_flagged() ? "crash-flag" : "invariant-violation";
      } else if (now_ns - s.beat_at_ns() >
                 mgr_.config().heartbeat_timeout.ns) {
        // Wedged: the beat timestamp refreshes both at frame end and from
        // every idle select() timeout (FrameHook::on_idle_wait), so a
        // healthy engine — even one starved of all traffic by a partition
        // — beats at least every select_timeout. A stale beat means the
        // loops themselves stopped (worker stuck inside a frame, barrier
        // hang), which is exactly what quarantine is for.
        escalate = true;
        why = "stale-heartbeat";
      }
      if (escalate) {
        s.request_stop();
        r.state = ShardState::kQuarantined;
        ++r.escalations;
        if (FleetObserver* o = mgr_.observer(); o != nullptr)
          o->on_escalation(i, why);
      }
      break;
    }
    case ShardState::kQuarantined: {
      // Wait for every worker fiber to leave its loop before touching
      // the engine; re-check on the next tick otherwise.
      if (!s.quiesced()) break;
      if (s.restores() >= mgr_.config().max_restores) {
        do_shed(i);
        break;
      }
      Shard::RestoreOutcome out = s.rebuild_and_restore();
      r.last_pause_ms = out.pause_ms;
      r.last_used_tail = out.used_tail;
      r.last_stats = out.stats;
      r.last_error = out.error;
      if (FleetObserver* o = mgr_.observer(); o != nullptr)
        o->on_restore(i, out.ok, out.used_tail, out.stats.tail_frames,
                      out.pause_ms);
      if (!out.ok) {
        do_shed(i);
        break;
      }
      r.restores = s.restores();
      r.state = ShardState::kHealthy;
      break;
    }
    case ShardState::kShed:
      break;
  }
}

void ShardSupervisor::do_shed(int i) {
  Shard& s = mgr_.shard(i);
  Report& r = track_[static_cast<size_t>(i)].report;
  std::vector<core::Server::SessionTransfer> transfers = s.shed();
  r.state = ShardState::kShed;
  for (core::Server::SessionTransfer& tr : transfers) {
    int target = -1;
    for (int k = 0; k < mgr_.shards(); ++k) {
      const int cand = (shed_cursor_ + k) % mgr_.shards();
      if (cand != i && !mgr_.shard(cand).down()) {
        target = cand;
        break;
      }
    }
    if (target < 0) break;  // no live shard left; sessions are lost
    shed_cursor_ = (target + 1) % mgr_.shards();
    if (FleetObserver* o = mgr_.observer(); o != nullptr) {
      tr.flow_id = mgr_.next_flow_id();
      o->on_shed_handoff(i, target, tr.flow_id);
    }
    if (mgr_.post_handoff(target, std::move(tr))) ++r.shed_sessions;
  }
  if (FleetObserver* o = mgr_.observer(); o != nullptr)
    o->on_shed(i, r.shed_sessions);
}

}  // namespace qserv::shard
