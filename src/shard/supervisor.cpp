#include "src/shard/supervisor.hpp"

#include <algorithm>
#include <utility>

#include "src/shard/manager.hpp"
#include "src/util/check.hpp"

namespace qserv::shard {

const char* shard_state_name(ShardState s) {
  switch (s) {
    case ShardState::kHealthy:
      return "healthy";
    case ShardState::kQuarantined:
      return "quarantined";
    case ShardState::kShed:
      return "shed";
  }
  return "?";
}

ShardSupervisor::ShardSupervisor(vt::Platform& platform, ShardManager& mgr)
    : platform_(platform), mgr_(mgr), gate_(std::make_shared<TickGate>()) {
  track_.resize(static_cast<size_t>(mgr_.shards()));
}

ShardSupervisor::~ShardSupervisor() {
  stop_.store(true, std::memory_order_release);
  // Blocks until a concurrently running tick drains, then turns every
  // still-pending timer callback into a no-op (they keep the gate alive
  // via shared_ptr, so the late lock itself is safe).
  std::lock_guard<std::mutex> lk(gate_->mu);
  gate_->alive = false;
}

void ShardSupervisor::start() {
  QSERV_CHECK(!started_);
  started_ = true;
  schedule_next();
}

void ShardSupervisor::request_stop() {
  stop_.store(true, std::memory_order_release);
}

void ShardSupervisor::schedule_next() {
  // Self-rescheduling timer: once stopped we must NOT re-arm, or a
  // simulated platform's run() (which drains the event queue to empty)
  // never returns.
  if (stop_.load(std::memory_order_acquire)) return;
  platform_.call_after(mgr_.config().supervise_interval,
                       [this, gate = gate_] {
                         std::lock_guard<std::mutex> lk(gate->mu);
                         if (!gate->alive) return;
                         tick();
                       });
}

void ShardSupervisor::tick() {
  if (stop_.load(std::memory_order_acquire)) return;
  ticks_.fetch_add(1, std::memory_order_relaxed);
  const int64_t now_ns = platform_.now().ns;
  // Fleet-level quarantine cap: count BEFORE supervising, so the victim
  // decision sees the whole simultaneous-failure picture rather than
  // whatever this pass has already repaired.
  int quarantined = 0;
  for (int i = 0; i < mgr_.shards(); ++i) {
    if (!mgr_.shard(i).down() &&
        track_[static_cast<size_t>(i)].report.state ==
            ShardState::kQuarantined)
      ++quarantined;
  }
  const int cap_victim =
      quarantined > mgr_.config().quarantine_cap ? pick_cap_victim() : -1;
  int restores_this_tick = 0;
  for (int i = 0; i < mgr_.shards(); ++i)
    supervise(i, now_ns, cap_victim, restores_this_tick);
  reclaim_stale_handoffs(now_ns);
  schedule_next();
}

int ShardSupervisor::pick_cap_victim() const {
  int victim = -1;
  int victim_clients = 0;
  for (int i = 0; i < mgr_.shards(); ++i) {
    const Shard& s = mgr_.shard(i);
    if (s.down() ||
        track_[static_cast<size_t>(i)].report.state !=
            ShardState::kQuarantined)
      continue;
    const int clients = s.beat_clients();
    // Lowest priority = fewest clients at the last beat; tie -> highest
    // index, so the choice is deterministic across runs.
    if (victim < 0 || clients <= victim_clients) {
      victim = i;
      victim_clients = clients;
    }
  }
  return victim;
}

void ShardSupervisor::supervise(int i, int64_t now_ns, int cap_victim,
                                int& restores_this_tick) {
  Shard& s = mgr_.shard(i);
  Track& t = track_[static_cast<size_t>(i)];
  Report& r = t.report;
  if (s.down()) return;
  switch (r.state) {
    case ShardState::kHealthy: {
      bool escalate = false;
      const char* why = nullptr;
      if (s.crash_flagged() || s.beat_invariants() > 0) {
        escalate = true;
        why = s.crash_flagged() ? "crash-flag" : "invariant-violation";
      } else if (now_ns - s.beat_at_ns() >
                 mgr_.config().heartbeat_timeout.ns) {
        // Wedged: the beat timestamp refreshes both at frame end and from
        // every idle select() timeout (FrameHook::on_idle_wait), so a
        // healthy engine — even one starved of all traffic by a partition
        // — beats at least every select_timeout. A stale beat means the
        // loops themselves stopped (worker stuck inside a frame, barrier
        // hang), which is exactly what quarantine is for.
        escalate = true;
        why = "stale-heartbeat";
      }
      if (escalate) {
        s.request_stop();
        r.state = ShardState::kQuarantined;
        ++r.escalations;
        if (FleetObserver* o = mgr_.observer(); o != nullptr)
          o->on_escalation(i, why);
      }
      break;
    }
    case ShardState::kQuarantined: {
      // Wait for every worker fiber to leave its loop before touching
      // the engine; re-check on the next tick otherwise.
      if (!s.quiesced()) break;
      const Config& cfg = mgr_.config();
      // Quarantine cap: this tick decided the fleet has too many shards
      // in repair at once and this one drew the short straw.
      if (i == cap_victim) {
        do_shed(i, "quarantine-cap");
        break;
      }
      if (s.restores() >= cfg.max_restores) {
        do_shed(i, "budget");
        break;
      }
      // Crash-loop circuit breaker: prune rebuild timestamps that fell
      // out of the sliding window, then count what's left. A shard that
      // keeps crashing right back after every rebuild burns restore
      // budget AND fleet attention; cut it off early.
      auto& stamps = t.rebuild_at_ns;
      stamps.erase(std::remove_if(stamps.begin(), stamps.end(),
                                  [&](int64_t ts) {
                                    return now_ns - ts >
                                           cfg.crash_loop_window.ns;
                                  }),
                   stamps.end());
      if (static_cast<int>(stamps.size()) >= cfg.crash_loop_max_rebuilds) {
        r.breaker_tripped = true;
        do_shed(i, "crash-loop");
        break;
      }
      // Exponential backoff between rebuilds (the first restore is
      // immediate — next_restore_at_ns starts at 0).
      if (now_ns < t.next_restore_at_ns) {
        ++r.backoff_waits;
        break;
      }
      // Stagger: under simultaneous multi-shard failure, rebuild at most
      // max_concurrent_restores shards per tick so recovery pauses don't
      // pile onto the same instant.
      if (restores_this_tick >= cfg.max_concurrent_restores) {
        ++r.backoff_waits;
        break;
      }
      ++restores_this_tick;
      Shard::RestoreOutcome out = s.rebuild_and_restore();
      r.last_pause_ms = out.pause_ms;
      r.last_used_tail = out.used_tail;
      r.last_mode = out.mode;
      r.last_stats = out.stats;
      r.last_error = out.error;
      if (FleetObserver* o = mgr_.observer(); o != nullptr)
        o->on_restore(i, out.ok, out.used_tail, out.stats.tail_frames,
                      out.pause_ms, restore_mode_name(out.mode));
      if (!out.ok) {
        do_shed(i, "restore-failed");
        break;
      }
      // Arm the breaker window and the next backoff: after the k-th
      // restore the (k+1)-th waits restore_backoff * 2^(k-1), clamped.
      stamps.push_back(now_ns);
      const int k = std::max(1, s.restores());
      int64_t backoff = cfg.restore_backoff.ns;
      for (int j = 1; j < k && backoff < cfg.restore_backoff_max.ns; ++j)
        backoff *= 2;
      backoff = std::min<int64_t>(backoff, cfg.restore_backoff_max.ns);
      t.next_restore_at_ns = now_ns + backoff;
      r.restores = s.restores();
      r.state = ShardState::kHealthy;
      break;
    }
    case ShardState::kShed:
      break;
  }
}

void ShardSupervisor::do_shed(int i, const char* why) {
  Shard& s = mgr_.shard(i);
  Report& r = track_[static_cast<size_t>(i)].report;
  std::vector<core::Server::SessionTransfer> transfers = s.shed();
  r.state = ShardState::kShed;
  r.shed_reason = why;
  for (core::Server::SessionTransfer& tr : transfers) {
    int target = -1;
    for (int k = 0; k < mgr_.shards(); ++k) {
      const int cand = (shed_cursor_ + k) % mgr_.shards();
      if (cand != i && !mgr_.shard(cand).down()) {
        target = cand;
        break;
      }
    }
    if (target < 0) break;  // no live shard left; sessions are lost
    shed_cursor_ = (target + 1) % mgr_.shards();
    // Shed transfers have no home to bounce back to: the source shard is
    // permanently down, so adopt-timeout reclaim must pick a live shard.
    tr.source_shard = -1;
    if (FleetObserver* o = mgr_.observer(); o != nullptr) {
      tr.flow_id = mgr_.next_flow_id();
      o->on_shed_handoff(i, target, tr.flow_id);
    }
    if (mgr_.post_handoff(target, std::move(tr))) ++r.shed_sessions;
  }
  if (FleetObserver* o = mgr_.observer(); o != nullptr)
    o->on_shed(i, r.shed_sessions, why);
}

void ShardSupervisor::reclaim_stale_handoffs(int64_t now_ns) {
  const int64_t cutoff = now_ns - mgr_.config().adopt_timeout.ns;
  for (int i = 0; i < mgr_.shards(); ++i) {
    // A healthy shard drains its own mailbox every master window; only a
    // down or quarantined shard can sit on transfers long enough to hit
    // the adopt timeout.
    if (!mgr_.shard(i).down() &&
        track_[static_cast<size_t>(i)].report.state == ShardState::kHealthy)
      continue;
    std::vector<core::Server::SessionTransfer> stale =
        mgr_.mailbox(i).take_older_than(cutoff);
    for (core::Server::SessionTransfer& t : stale) {
      // Return to the source shard when it is still alive; otherwise any
      // live shard beats leaving the session stranded.
      int target = t.source_shard;
      if (target < 0 || target >= mgr_.shards() || target == i ||
          mgr_.shard(target).down()) {
        target = -1;
        for (int k = 1; k <= mgr_.shards(); ++k) {
          const int cand = (i + k) % mgr_.shards();
          if (cand != i && !mgr_.shard(cand).down()) {
            target = cand;
            break;
          }
        }
      }
      if (target < 0) continue;  // whole fleet down; session is lost
      mgr_.count_handoff_return();
      if (FleetObserver* o = mgr_.observer(); o != nullptr)
        o->on_handoff_returned(i, target, t.flow_id, /*supervisor_ctx=*/true);
      mgr_.post_handoff(target, std::move(t));
    }
  }
}

}  // namespace qserv::shard
