#include "src/shard/shard.hpp"

#include <algorithm>
#include <chrono>

#include "src/recovery/journal.hpp"
#include "src/shard/manager.hpp"
#include "src/util/check.hpp"

namespace qserv::shard {

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Out-sequence headroom per prior restore of this shard. In a crash
// loop every generation dies before its first checkpoint, so each one
// restores the SAME stashed images — and without a growing bump each
// would re-send channel sequences an earlier generation already burned,
// which peers then discard as duplicates (stranding them: the adoption
// redirect after a shed rides those sequences too). A generation can
// only send replies on the stale stash until its own first checkpoint
// refreshes it (checkpoint_interval frames, default 64), so 512 per
// generation is comfortably past anything it may have used.
constexpr uint32_t kSeqBumpPerGeneration = 512;

}  // namespace

const char* restore_mode_name(RestoreMode m) {
  switch (m) {
    case RestoreMode::kNone: return "none";
    case RestoreMode::kTailReplay: return "tail-replay";
    case RestoreMode::kCheckpointOnly: return "checkpoint-only";
    case RestoreMode::kFreshRebuild: return "fresh-rebuild";
  }
  return "?";
}

Shard::Shard(vt::Platform& platform, net::Transport& net,
             const spatial::GameMap& map, ShardManager& mgr,
             core::ServerConfig cfg, int index)
    : platform_(platform),
      net_(net),
      map_(map),
      mgr_(mgr),
      cfg_(std::move(cfg)),
      index_(index) {
  build();
}

Shard::~Shard() = default;

void Shard::build() {
  server_ =
      std::make_unique<core::ParallelServer>(platform_, net_, map_, cfg_);
  hook_ = std::make_unique<ShardEngineHook>(mgr_, index_, *server_);
  server_->add_frame_hook(hook_.get());
  crashed_.store(false, std::memory_order_release);
  // Fresh generation, fresh grace period: the supervisor's stall timer
  // must not count silence accrued by the previous generation.
  beat_frames_.store(0, std::memory_order_release);
  beat_clients_.store(0, std::memory_order_release);
  beat_invariants_.store(0, std::memory_order_release);
  beat_at_ns_.store(platform_.now().ns, std::memory_order_release);
}

void Shard::start() {
  QSERV_CHECK(server_ != nullptr);
  server_->start();
}

void Shard::request_stop() {
  if (server_ != nullptr) server_->request_stop();
}

void Shard::inject_crash() {
  crashed_.store(true, std::memory_order_release);
  if (server_ != nullptr) server_->request_stop();
}

void Shard::publish_heartbeat(uint64_t frames, int64_t now_ns, int clients,
                              uint64_t invariant_violations) {
  beat_frames_.store(frames, std::memory_order_release);
  beat_clients_.store(clients, std::memory_order_release);
  beat_invariants_.store(invariant_violations, std::memory_order_release);
  beat_at_ns_.store(now_ns, std::memory_order_release);
}

std::pair<std::vector<uint8_t>, std::vector<uint8_t>>
Shard::capture_images() {
  // Only overwrite the stash when this generation actually checkpointed:
  // a failed-restore generation (fresh, empty) must not clobber the dead
  // generation's images, which the shed path still needs.
  if (server_ != nullptr && server_->checkpoints() != nullptr &&
      server_->checkpoints()->has()) {
    cap_ckpt_ = server_->checkpoints()->latest();
    cap_jrnl_ = server_->recorder()->encode();
  }
  // Chaos hook: model a torn/corrupted on-disk image by flipping one byte
  // in the body (past the magic/version header, before the trailing
  // checksum words, so the content checksum — not kBadMagic — catches it).
  if (corrupt_next_.exchange(false, std::memory_order_acq_rel) &&
      cap_ckpt_.size() > 16) {
    cap_ckpt_[cap_ckpt_.size() / 2] ^= 0x40;
  }
  return {cap_ckpt_, cap_jrnl_};
}

Shard::RestoreOutcome Shard::rebuild_and_restore() {
  QSERV_CHECK(quiesced());
  RestoreOutcome out;
  auto [image, journal] = capture_images();
  out.had_checkpoint = !image.empty();
  const auto t0 = std::chrono::steady_clock::now();
  server_.reset();
  hook_.reset();
  build();
  const uint32_t seq_bump =
      static_cast<uint32_t>(restores_) * kSeqBumpPerGeneration;
  if (!image.empty()) {
    core::Server::RestoreStats stats{};
    recovery::LoadError err =
        server_->restore_from(image, journal, &stats, seq_bump);
    out.error = err;
    out.stats = stats;
    if (err == recovery::LoadError::kNone) {
      out.used_tail = stats.tail_frames > 0;
      out.mode = out.used_tail ? RestoreMode::kTailReplay
                               : RestoreMode::kCheckpointOnly;
    } else if (err == recovery::LoadError::kReplayDiverged) {
      // The journal tail is unusable but the checkpoint itself is intact:
      // fall back to checkpoint-only on yet another fresh engine (the
      // diverged one has already mutated its world).
      server_.reset();
      hook_.reset();
      build();
      err = server_->restore_from(image, {}, nullptr, seq_bump);
      out.used_tail = false;
      out.mode = RestoreMode::kCheckpointOnly;
    }
    if (err != recovery::LoadError::kNone) {
      // Last rung of the fallback chain: the checkpoint itself is
      // unusable (checksum mismatch, truncation, corruption — or the
      // checkpoint-only retry above also failed). Come back empty on a
      // fresh engine rather than staying down: the silence backstop
      // reconnects clients and every rejoin is served a forced full
      // snapshot because the fresh baseline is 0 by construction. The
      // first error is preserved in out.error for the journal/trace.
      server_.reset();
      hook_.reset();
      build();
      out.used_tail = false;
      out.stats = core::Server::RestoreStats{};
      out.mode = RestoreMode::kFreshRebuild;
    }
  } else {
    out.mode = RestoreMode::kFreshRebuild;
  }
  // No checkpoint ever taken (or unusable): come back empty and let
  // clients reconnect.
  // Either way this generation is about to go live: give the fleet
  // observer its pre-start window to re-attach tracer/metrics hooks, or
  // the restored shard would go dark for the rest of the run.
  if (FleetObserver* o = mgr_.observer(); o != nullptr)
    o->on_engine_built(index_, *server_);
  server_->start();
  out.pause_ms = ms_since(t0);
  out.ok = true;
  ++restores_;
  return out;
}

std::vector<core::Server::SessionTransfer> Shard::shed() {
  QSERV_CHECK(quiesced());
  capture_images();
  std::vector<core::Server::SessionTransfer> out;
  server_.reset();
  hook_.reset();
  if (!cap_ckpt_.empty()) {
    // Throwaway engine: restore the dead generation's state just far
    // enough to extract every session, then tear it down. Never started,
    // so extract_session runs single-threaded by construction.
    build();
    const uint32_t seq_bump =
        static_cast<uint32_t>(restores_) * kSeqBumpPerGeneration;
    recovery::LoadError err =
        server_->restore_from(cap_ckpt_, cap_jrnl_, nullptr, seq_bump);
    if (err == recovery::LoadError::kReplayDiverged) {
      server_.reset();
      hook_.reset();
      build();
      err = server_->restore_from(cap_ckpt_, {}, nullptr, seq_bump);
    }
    if (err == recovery::LoadError::kNone) {
      server_->detach_world_charging();
      std::vector<uint16_t> ports;
      {
        core::ClientRegistry& reg = server_->registry();
        vt::LockGuard g(reg.mutex());
        ports.reserve(reg.port_map().size());
        for (const auto& [port, idx] : reg.port_map()) ports.push_back(port);
      }
      std::sort(ports.begin(), ports.end());  // deterministic handoff order
      for (uint16_t port : ports) {
        core::Server::SessionTransfer t;
        if (server_->extract_session(port, t)) out.push_back(std::move(t));
      }
    }
    server_.reset();
    hook_.reset();
  }
  down_.store(true, std::memory_order_release);
  return out;
}

}  // namespace qserv::shard
