#include "src/shard/shard.hpp"

#include <algorithm>
#include <chrono>

#include "src/recovery/journal.hpp"
#include "src/shard/manager.hpp"
#include "src/util/check.hpp"

namespace qserv::shard {

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Shard::Shard(vt::Platform& platform, net::VirtualNetwork& net,
             const spatial::GameMap& map, ShardManager& mgr,
             core::ServerConfig cfg, int index)
    : platform_(platform),
      net_(net),
      map_(map),
      mgr_(mgr),
      cfg_(std::move(cfg)),
      index_(index) {
  build();
}

Shard::~Shard() = default;

void Shard::build() {
  server_ =
      std::make_unique<core::ParallelServer>(platform_, net_, map_, cfg_);
  hook_ = std::make_unique<ShardEngineHook>(mgr_, index_, *server_);
  server_->add_frame_hook(hook_.get());
  crashed_.store(false, std::memory_order_release);
  // Fresh generation, fresh grace period: the supervisor's stall timer
  // must not count silence accrued by the previous generation.
  beat_frames_.store(0, std::memory_order_release);
  beat_clients_.store(0, std::memory_order_release);
  beat_invariants_.store(0, std::memory_order_release);
  beat_at_ns_.store(platform_.now().ns, std::memory_order_release);
}

void Shard::start() {
  QSERV_CHECK(server_ != nullptr);
  server_->start();
}

void Shard::request_stop() {
  if (server_ != nullptr) server_->request_stop();
}

void Shard::inject_crash() {
  crashed_.store(true, std::memory_order_release);
  if (server_ != nullptr) server_->request_stop();
}

void Shard::publish_heartbeat(uint64_t frames, int64_t now_ns, int clients,
                              uint64_t invariant_violations) {
  beat_frames_.store(frames, std::memory_order_release);
  beat_clients_.store(clients, std::memory_order_release);
  beat_invariants_.store(invariant_violations, std::memory_order_release);
  beat_at_ns_.store(now_ns, std::memory_order_release);
}

std::pair<std::vector<uint8_t>, std::vector<uint8_t>>
Shard::capture_images() {
  // Only overwrite the stash when this generation actually checkpointed:
  // a failed-restore generation (fresh, empty) must not clobber the dead
  // generation's images, which the shed path still needs.
  if (server_ != nullptr && server_->checkpoints() != nullptr &&
      server_->checkpoints()->has()) {
    cap_ckpt_ = server_->checkpoints()->latest();
    cap_jrnl_ = server_->recorder()->encode();
  }
  return {cap_ckpt_, cap_jrnl_};
}

Shard::RestoreOutcome Shard::rebuild_and_restore() {
  QSERV_CHECK(quiesced());
  RestoreOutcome out;
  auto [image, journal] = capture_images();
  out.had_checkpoint = !image.empty();
  const auto t0 = std::chrono::steady_clock::now();
  server_.reset();
  hook_.reset();
  build();
  if (!image.empty()) {
    core::Server::RestoreStats stats{};
    recovery::LoadError err = server_->restore_from(image, journal, &stats);
    out.error = err;
    out.stats = stats;
    if (err == recovery::LoadError::kReplayDiverged) {
      // The journal tail is unusable but the checkpoint itself is intact:
      // fall back to checkpoint-only on yet another fresh engine (the
      // diverged one has already mutated its world).
      server_.reset();
      hook_.reset();
      build();
      err = server_->restore_from(image);
      out.used_tail = false;
    } else if (err == recovery::LoadError::kNone) {
      out.used_tail = stats.tail_frames > 0;
    }
    if (err != recovery::LoadError::kNone) {
      if (out.error == recovery::LoadError::kNone) out.error = err;
      out.pause_ms = ms_since(t0);
      return out;  // not started; supervisor sheds
    }
  }
  // No checkpoint ever taken: come back empty and let clients reconnect.
  // Either way this generation is about to go live: give the fleet
  // observer its pre-start window to re-attach tracer/metrics hooks, or
  // the restored shard would go dark for the rest of the run.
  if (FleetObserver* o = mgr_.observer(); o != nullptr)
    o->on_engine_built(index_, *server_);
  server_->start();
  out.pause_ms = ms_since(t0);
  out.ok = true;
  ++restores_;
  return out;
}

std::vector<core::Server::SessionTransfer> Shard::shed() {
  QSERV_CHECK(quiesced());
  capture_images();
  std::vector<core::Server::SessionTransfer> out;
  server_.reset();
  hook_.reset();
  if (!cap_ckpt_.empty()) {
    // Throwaway engine: restore the dead generation's state just far
    // enough to extract every session, then tear it down. Never started,
    // so extract_session runs single-threaded by construction.
    build();
    recovery::LoadError err =
        server_->restore_from(cap_ckpt_, cap_jrnl_, nullptr);
    if (err == recovery::LoadError::kReplayDiverged) {
      server_.reset();
      hook_.reset();
      build();
      err = server_->restore_from(cap_ckpt_);
    }
    if (err == recovery::LoadError::kNone) {
      server_->detach_world_charging();
      std::vector<uint16_t> ports;
      {
        core::ClientRegistry& reg = server_->registry();
        vt::LockGuard g(reg.mutex());
        ports.reserve(reg.port_map().size());
        for (const auto& [port, idx] : reg.port_map()) ports.push_back(port);
      }
      std::sort(ports.begin(), ports.end());  // deterministic handoff order
      for (uint16_t port : ports) {
        core::Server::SessionTransfer t;
        if (server_->extract_session(port, t)) out.push_back(std::move(t));
      }
    }
    server_.reset();
    hook_.reset();
  }
  down_.store(true, std::memory_order_release);
  return out;
}

}  // namespace qserv::shard
