// The shard layer's attachment to one engine generation: a FrameHook that
// (a) publishes a heartbeat — frame counter, master-window clock,
// connected count, invariant violations — as atomics the supervisor may
// read from any thread, (b) drains the shard's inbound handoff mailbox in
// the master window (the only single-threaded point of the frame), and
// (c) detects sessions whose entities wandered past the shard's slab and
// extracts them toward their new home. One hook per engine generation; a
// rebuilt engine gets a fresh hook.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/core/frame_hooks.hpp"
#include "src/core/server.hpp"

namespace qserv::shard {

class ShardManager;

class ShardEngineHook final : public core::FrameHook {
 public:
  ShardEngineHook(ShardManager& mgr, int index, core::Server& server);

  // --- FrameHook (engine threads) ---
  void on_master_window(int tid, vt::TimePoint frame_start,
                        core::ThreadStats& st) override;
  void on_frame_end(vt::TimePoint frame_start, int moves,
                    core::ThreadStats& st) override;
  void on_idle_wait(int tid) override;

 private:
  void adopt_inbound();
  void migrate_outbound();
  void rearm_redirects();

  ShardManager& mgr_;
  int index_;
  core::Server& server_;
  // Adoptions refused (registry momentarily full) retry next window.
  std::vector<core::Server::SessionTransfer> retry_;
  // Ports adopted at time t whose peers have not yet been heard from on
  // this engine; the redirect snapshot re-arms every window until then
  // (notify_port is one-shot and the teaching snapshot may be lost).
  std::vector<std::pair<uint16_t, int64_t>> pending_redirects_;
};

}  // namespace qserv::shard
