// Spatial shard assignment: the map's X extent is cut into `shards` equal
// slabs; a position belongs to the slab containing its x coordinate. The
// router is pure geometry — it never touches an engine — so both the
// harness (initial join placement) and the per-shard engine hooks
// (boundary-crossing detection) share one authority on who owns where.
#pragma once

#include "src/util/aabb.hpp"

namespace qserv::shard {

class ShardRouter {
 public:
  // `margin` is the hysteresis band of home_for(): a resident of shard i
  // keeps its home until it is more than `margin` units past the slab
  // edge, so a player fighting along the line does not ping-pong between
  // engines every frame.
  ShardRouter(const Aabb& bounds, int shards, float margin);

  int shards() const { return shards_; }
  float margin() const { return margin_; }

  // The slab containing `p` (clamped to [0, shards)).
  int shard_for(const Vec3& p) const;

  // Where a session homed on `current` should live given its position:
  // `current` while inside the slab or within the margin band,
  // shard_for(p) once clearly beyond it.
  int home_for(int current, const Vec3& p) const;

  // The slab's x interval (diagnostics / tests).
  float slab_lo(int shard) const;
  float slab_hi(int shard) const;

 private:
  float lo_;
  float width_;  // per-slab
  int shards_;
  float margin_;
};

}  // namespace qserv::shard
