// Worker watchdog: detects wedged worker threads from their heartbeats.
//
// Each worker stamps a heartbeat (relaxed atomic store of the current
// time) at the top of its frame loop. Detection is two-tier:
//   - check_due() is a cheap const scan used by (a) live workers on their
//     select-timeout maintenance path and (b) a periodic timer on
//     RealPlatform. It only *reports* that a heartbeat looks stale — the
//     timer and maintenance paths never mutate watchdog state, they just
//     make sure a frame (and with it a master window) happens soon.
//   - master_check() runs in the master's single-threaded between-frames
//     window and is the only writer: it moves workers in and out of the
//     stalled set and returns the deltas so the server can reassign the
//     stalled worker's clients and exclude it from participation.
//
// A worker that has never heartbeat (not started yet) is never considered
// stalled. A stalled worker whose heartbeat resumes is moved back to the
// live set (stall *recovery* in the thread-came-back sense; its clients
// stay wherever they were migrated — reassignment is one-way).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/resilience/config.hpp"

namespace qserv::resilience {

class WorkerWatchdog {
 public:
  WorkerWatchdog(const Config& cfg, int num_threads);

  bool enabled() const { return cfg_.watchdog_timeout.ns > 0; }
  int num_threads() const { return static_cast<int>(beats_.size()); }

  // Worker-side stamp; any thread, lock-free.
  void heartbeat(int tid, vt::TimePoint now) {
    beats_[static_cast<size_t>(tid)].store(now.ns, std::memory_order_relaxed);
  }

  // True if some live worker's heartbeat is stale — i.e. a master window
  // should run soon to adjudicate. Const, any thread. `self` (the asking
  // worker, -1 for the RealPlatform timer) is exempted: it is obviously
  // alive to be asking.
  bool check_due(vt::TimePoint now, int self = -1) const;

  struct Verdict {
    std::vector<int> newly_stalled;
    std::vector<int> recovered;
  };
  // Master-window only (single-threaded): adjudicates stale heartbeats,
  // updates the stalled mask, and returns what changed.
  Verdict master_check(vt::TimePoint now, int self);

  // Bit per stalled worker; any thread.
  uint64_t stalled_mask() const {
    return stalled_mask_.load(std::memory_order_relaxed);
  }
  bool is_stalled(int tid) const {
    return (stalled_mask() >> tid) & 1u;
  }

  struct Counters {
    uint64_t stalls_detected = 0;
    uint64_t stalls_recovered = 0;
  };
  const Counters& counters() const { return counters_; }

 private:
  static constexpr int64_t kNever = INT64_MIN;

  const Config cfg_;
  // unique_ptr array rather than vector<atomic> (atomics aren't movable).
  std::unique_ptr<std::atomic<int64_t>[]> beats_storage_;
  struct BeatsView {
    std::atomic<int64_t>* p = nullptr;
    size_t n = 0;
    std::atomic<int64_t>& operator[](size_t i) const { return p[i]; }
    size_t size() const { return n; }
  } beats_;
  std::atomic<uint64_t> stalled_mask_{0};
  Counters counters_;
};

}  // namespace qserv::resilience
