// Lock-free per-client rate limiter (GCRA formulation of a token
// bucket). The server's receive phase calls try_take() for every move; a
// client's datagrams normally drain on one thread, but during a
// stall-recovery migration two threads can briefly race on the same
// client, so the state is a single atomic advanced by CAS.
#pragma once

#include <atomic>
#include <cstdint>

namespace qserv::resilience {

class TokenBucket {
 public:
  TokenBucket() = default;
  // Movable so the enclosing client registry can be vector-resized at
  // construction time; never moved while traffic is flowing.
  TokenBucket(TokenBucket&& o) noexcept
      : interval_ns_(o.interval_ns_),
        burst_ns_(o.burst_ns_),
        tat_(o.tat_.load(std::memory_order_relaxed)) {}
  TokenBucket& operator=(TokenBucket&& o) noexcept {
    interval_ns_ = o.interval_ns_;
    burst_ns_ = o.burst_ns_;
    tat_.store(o.tat_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    return *this;
  }

  // `rate_per_s` sustained permits per second, `burst` extra permits of
  // headroom. rate_per_s <= 0 disables the limiter (try_take always
  // succeeds).
  void configure(double rate_per_s, double burst) {
    if (rate_per_s <= 0.0) {
      interval_ns_ = 0;
      burst_ns_ = 0;
    } else {
      interval_ns_ = static_cast<int64_t>(1e9 / rate_per_s);
      burst_ns_ = static_cast<int64_t>(static_cast<double>(interval_ns_) *
                                       (burst < 0.0 ? 0.0 : burst));
    }
    tat_.store(0, std::memory_order_relaxed);
  }

  bool enabled() const { return interval_ns_ > 0; }

  // Takes one permit at time `now_ns`; false = over budget, drop.
  bool try_take(int64_t now_ns) {
    if (interval_ns_ <= 0) return true;
    int64_t tat = tat_.load(std::memory_order_relaxed);
    for (;;) {
      // Theoretical arrival time: the earliest instant the bucket is
      // willing to account this permit to. More than burst_ns_ in the
      // future means the client is past its sustained rate plus burst.
      const int64_t base = tat > now_ns ? tat : now_ns;
      if (base - now_ns > burst_ns_) return false;
      if (tat_.compare_exchange_weak(tat, base + interval_ns_,
                                     std::memory_order_relaxed)) {
        return true;
      }
    }
  }

 private:
  int64_t interval_ns_ = 0;  // 1e9 / rate; 0 = disabled
  int64_t burst_ns_ = 0;
  std::atomic<int64_t> tat_{0};
};

}  // namespace qserv::resilience
