// The resilience subsystem's attachment to the frame engine: owns the
// FrameGovernor (always) and the WorkerWatchdog (parallel servers that ask
// for one), and serves their master-window duties — stall adjudication
// with client migration, then the degradation-ladder step — through the
// engine facade instead of reaching into Server internals.
#pragma once

#include <memory>

#include "src/core/frame_hooks.hpp"
#include "src/resilience/governor.hpp"
#include "src/resilience/watchdog.hpp"

namespace qserv::resilience {

class ServerResilience final : public core::FrameHook {
 public:
  explicit ServerResilience(core::Engine& engine);

  ServerResilience(const ServerResilience&) = delete;
  ServerResilience& operator=(const ServerResilience&) = delete;

  FrameGovernor& governor() { return governor_; }
  const FrameGovernor& governor() const { return governor_; }

  // Creates the watchdog (parallel servers with a timeout configured);
  // returns a raw pointer the caller may cache — lifetime matches this
  // hook.
  WorkerWatchdog* arm_watchdog(int threads);
  WorkerWatchdog* watchdog() const { return watchdog_.get(); }

  // Watchdog adjudication (stall migration + dumps) then the governor
  // step, in the old master-duties order.
  void on_master_window(int tid, vt::TimePoint frame_start,
                        core::ThreadStats& st) override;

 private:
  core::Engine& engine_;
  FrameGovernor governor_;
  std::unique_ptr<WorkerWatchdog> watchdog_;
  vt::TimePoint next_expensive_evict_{};
};

}  // namespace qserv::resilience
