// Knobs for the overload-protection and self-healing subsystem
// (src/resilience/): receive-phase backpressure, connect-time admission
// control, the adaptive degradation governor, and the worker watchdog.
// Kept in its own header (a POD with no dependencies beyond vt::Duration)
// so core/config.hpp can embed it without pulling in the mechanisms.
#pragma once

#include <cstddef>

#include "src/vthread/time.hpp"

namespace qserv::resilience {

// The degradation ladder, mildest remedy first. The governor holds a
// current level; every rung at or below the level is active. Each rung
// trades a little fidelity for frame time, so overload produces bounded
// degradation instead of the paper's §5.2 response-rate cliff.
enum DegradeLevel : int {
  kNormal = 0,
  // Far entities (beyond half the interest range) are refreshed every
  // other snapshot, halving the quadratic interest/visibility reply cost
  // for the entities clients notice least.
  kThinFarEntities = 1,
  // Multiple moves queued by one client within a frame collapse into the
  // newest one: the client still gets its ack and snapshot, but the
  // server executes (and charges) one move, not the backlog.
  kCoalesceMoves = 2,
  // Shed non-essential frame work: the invariant-checker audit and the
  // §5.2 frame-trace append are skipped while this rung is active.
  kShedDebugWork = 3,
  // Last resort: evict the most expensive client (most moves executed
  // since the previous scan) with kServerBusy, at most one per
  // evict_interval.
  kEvictExpensive = 4,
};

const char* degrade_level_name(int level);

struct Config {
  // --- receive-phase backpressure ---
  // Sustained per-client move budget, moves/second; bursts of up to
  // move_burst above it are tolerated (token bucket). Moves beyond the
  // budget are dropped before execution (the netchan resend model makes
  // this safe: state is retransmitted every frame). 0 disables.
  double move_rate_limit = 0.0;
  double move_burst = 10.0;
  // Datagrams with payloads larger than this are dropped before any parse
  // work (flood/oversize clamp). 0 disables. The legitimate protocol's
  // largest client message is a connect (~40 bytes), so the default is
  // generous.
  size_t max_packet_bytes = 1400;

  // --- connect-time admission control ---
  // When enabled, new connects are refused with kServerBusy while the
  // rolling p95 frame time exceeds admission_ratio * tick_budget —
  // serving the admitted population well beats admitting players the
  // frame loop cannot simulate. Duplicate connects (re-acks) always pass.
  bool admission_control = false;
  double admission_ratio = 1.25;

  // --- adaptive degradation governor ---
  // The governor watches a rolling window of frame durations and steps
  // the degradation ladder down when p95 exceeds enter_ratio*tick_budget,
  // back up when it falls below exit_ratio*tick_budget (hysteresis), with
  // at least `dwell` frames between steps.
  bool governor = false;
  // Target frame duration: the server tick the clients' send rate implies
  // (~30 Hz clients => ~33 ms). Shared by governor and admission control.
  vt::Duration tick_budget = vt::millis(33);
  int window = 32;  // rolling frame-duration window (frames)
  int dwell = 16;   // minimum frames between ladder steps
  double enter_ratio = 1.0;
  double exit_ratio = 0.6;
  int max_level = kEvictExpensive;
  vt::Duration evict_interval = vt::millis(250);  // L4 eviction pace

  // --- worker watchdog ---
  // A worker whose heartbeat is older than this is declared stalled: its
  // clients are reassigned to live workers and the stall is counted and
  // traced. Should comfortably exceed ServerConfig::select_timeout plus
  // the worst healthy frame time. 0 disables.
  vt::Duration watchdog_timeout{};
};

}  // namespace qserv::resilience
