#include "src/resilience/watchdog.hpp"

namespace qserv::resilience {

WorkerWatchdog::WorkerWatchdog(const Config& cfg, int num_threads)
    : cfg_(cfg) {
  const size_t n = num_threads > 0 ? static_cast<size_t>(num_threads) : 1;
  beats_storage_ = std::make_unique<std::atomic<int64_t>[]>(n);
  beats_.p = beats_storage_.get();
  beats_.n = n;
  for (size_t i = 0; i < n; ++i) {
    beats_[i].store(kNever, std::memory_order_relaxed);
  }
}

bool WorkerWatchdog::check_due(vt::TimePoint now, int self) const {
  if (!enabled()) return false;
  const uint64_t stalled = stalled_mask();
  for (size_t i = 0; i < beats_.size(); ++i) {
    if (static_cast<int>(i) == self) continue;
    if ((stalled >> i) & 1u) continue;  // already adjudicated
    const int64_t hb = beats_[i].load(std::memory_order_relaxed);
    if (hb == kNever) continue;  // never started
    if (now.ns - hb > cfg_.watchdog_timeout.ns) return true;
  }
  return false;
}

WorkerWatchdog::Verdict WorkerWatchdog::master_check(vt::TimePoint now,
                                                     int self) {
  Verdict v;
  if (!enabled()) return v;
  uint64_t stalled = stalled_mask_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < beats_.size(); ++i) {
    const int64_t hb = beats_[i].load(std::memory_order_relaxed);
    if (hb == kNever) continue;
    const bool stale = now.ns - hb > cfg_.watchdog_timeout.ns;
    const bool marked = (stalled >> i) & 1u;
    if (stale && !marked && static_cast<int>(i) != self) {
      stalled |= (uint64_t{1} << i);
      ++counters_.stalls_detected;
      v.newly_stalled.push_back(static_cast<int>(i));
    } else if (!stale && marked) {
      stalled &= ~(uint64_t{1} << i);
      ++counters_.stalls_recovered;
      v.recovered.push_back(static_cast<int>(i));
    }
  }
  stalled_mask_.store(stalled, std::memory_order_relaxed);
  return v;
}

}  // namespace qserv::resilience
