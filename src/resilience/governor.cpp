#include "src/resilience/governor.hpp"

#include <algorithm>

namespace qserv::resilience {

const char* degrade_level_name(int level) {
  switch (level) {
    case kNormal: return "normal";
    case kThinFarEntities: return "thin-far-entities";
    case kCoalesceMoves: return "coalesce-moves";
    case kShedDebugWork: return "shed-debug-work";
    case kEvictExpensive: return "evict-expensive";
    default: return "unknown";
  }
}

FrameGovernor::FrameGovernor(const Config& cfg) : cfg_(cfg) {
  window_ms_.resize(cfg_.window > 0 ? static_cast<size_t>(cfg_.window) : 1,
                    0.0);
}

int FrameGovernor::on_frame(vt::Duration frame_time) {
  window_ms_[next_] = frame_time.millis();
  next_ = (next_ + 1) % window_ms_.size();
  if (filled_ < window_ms_.size()) ++filled_;

  // p95 over the filled portion of the window. The window is small
  // (default 32) so a copy+nth_element per frame is noise next to the
  // frame itself.
  std::vector<double> sorted(window_ms_.begin(),
                             window_ms_.begin() + static_cast<long>(filled_));
  const size_t idx = (filled_ * 95) / 100;
  const size_t nth = idx < filled_ ? idx : filled_ - 1;
  std::nth_element(sorted.begin(), sorted.begin() + static_cast<long>(nth),
                   sorted.end());
  const double p95 = sorted[nth];
  p95_ms_.store(p95, std::memory_order_relaxed);

  int level = level_.load(std::memory_order_relaxed);
  if (level > 0) ++counters_.frames_degraded;
  if (!cfg_.governor) return level;

  ++frames_since_step_;
  const double budget = cfg_.tick_budget.millis();
  // Don't step on a part-filled window: a couple of slow startup frames
  // should not throw the ladder before there is a real p95 to read.
  if (filled_ < window_ms_.size() || frames_since_step_ < cfg_.dwell) {
    return level;
  }
  if (p95 > budget * cfg_.enter_ratio && level < cfg_.max_level) {
    ++level;
    ++counters_.steps_down;
    frames_since_step_ = 0;
    level_.store(level, std::memory_order_relaxed);
    max_level_reached_ = std::max(max_level_reached_, level);
  } else if (p95 < budget * cfg_.exit_ratio && level > 0) {
    --level;
    ++counters_.steps_up;
    frames_since_step_ = 0;
    level_.store(level, std::memory_order_relaxed);
  }
  return level;
}

}  // namespace qserv::resilience
