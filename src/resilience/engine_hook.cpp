#include "src/resilience/engine_hook.hpp"

#include <string>

#include "src/core/config.hpp"
#include "src/core/frame_stats.hpp"
#include "src/obs/trace.hpp"
#include "src/vthread/platform.hpp"

namespace qserv::resilience {

ServerResilience::ServerResilience(core::Engine& engine)
    : engine_(engine), governor_(engine.config().resilience) {}

WorkerWatchdog* ServerResilience::arm_watchdog(int threads) {
  watchdog_ = std::make_unique<WorkerWatchdog>(engine_.config().resilience,
                                               threads);
  return watchdog_.get();
}

void ServerResilience::on_master_window(int tid, vt::TimePoint frame_start,
                                        core::ThreadStats& st) {
  vt::Platform& platform = engine_.platform();
  // Watchdog adjudication: stale heartbeats become stalls, and a stalled
  // worker's clients migrate to live threads right here — master election
  // next frame simply proceeds without it.
  if (watchdog_ != nullptr) {
    const auto verdict = watchdog_->master_check(platform.now(), tid);
    for (const int stalled : verdict.newly_stalled) {
      const int migrated = engine_.migrate_clients_from(stalled, st);
      if (st.tracer != nullptr && st.tracer->enabled())
        st.tracer->record(st.trace_track, "worker-stalled",
                          platform.now().ns, 0, stalled * 1000 + migrated);
      if (engine_.config().recovery.dump_on_stall)
        engine_.dump_blackbox("stall", "worker " + std::to_string(stalled) +
                                           " adjudicated stalled; migrated " +
                                           std::to_string(migrated) +
                                           " clients");
    }
    for (const int back : verdict.recovered) {
      if (st.tracer != nullptr && st.tracer->enabled())
        st.tracer->record(st.trace_track, "worker-recovered",
                          platform.now().ns, 0, back);
    }
  }
  // Governor: feed the finished frame, possibly stepping the ladder (and
  // serving its eviction rung).
  const int before = governor_.level();
  const int level = governor_.on_frame(platform.now() - frame_start);
  if (level != before && st.tracer != nullptr && st.tracer->enabled())
    st.tracer->record(st.trace_track, "degrade-step", platform.now().ns, 0,
                      level);
  if (level >= kEvictExpensive && platform.now() >= next_expensive_evict_) {
    engine_.evict_most_expensive(st);
    next_expensive_evict_ =
        platform.now() + engine_.config().resilience.evict_interval;
  }
}

}  // namespace qserv::resilience
