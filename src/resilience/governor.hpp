// Frame-budget governor: turns overload into measured degradation.
//
// The master feeds every finished frame's duration into on_frame() from
// its single-threaded between-frames window. The governor keeps a rolling
// window of durations; when the window's p95 exceeds the tick budget it
// steps *down* the degradation ladder (config.hpp's DegradeLevel rungs),
// and when p95 falls back below the exit threshold it steps *up* again —
// hysteretically, with a dwell time between steps so the ladder does not
// chatter at the boundary.
//
// Thread safety: on_frame() is master-window-only (successive masters are
// ordered by the frame-sync mutex); level() and p95-based admission
// queries are relaxed atomics readable from any thread's hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/resilience/config.hpp"

namespace qserv::resilience {

class FrameGovernor {
 public:
  explicit FrameGovernor(const Config& cfg);

  // Records one finished frame. Master-only, between frames. Returns the
  // (possibly changed) degradation level so the caller can trace steps.
  int on_frame(vt::Duration frame_time);

  // Current ladder level; any thread. 0 when the governor is disabled.
  int level() const { return level_.load(std::memory_order_relaxed); }
  bool at_least(int rung) const { return level() >= rung; }

  // Rolling p95 frame time, milliseconds; any thread.
  double p95_ms() const { return p95_ms_.load(std::memory_order_relaxed); }

  // Connect-time admission query: true while the rolling p95 exceeds
  // admission_ratio * tick_budget. Independent of `governor` being
  // enabled — admission control can run without the ladder — but needs
  // on_frame() feeding either way.
  bool admission_overloaded() const {
    return p95_ms() >
           cfg_.tick_budget.millis() * cfg_.admission_ratio;
  }

  // Graceful-drain gate for hot restart: while set, the receive phase
  // answers every new connect with kServerBusy regardless of the
  // admission-control configuration, so the population stops growing
  // while existing sessions keep playing until the handoff checkpoint.
  void set_draining(bool on) {
    draining_.store(on, std::memory_order_relaxed);
  }
  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  struct Counters {
    uint64_t steps_down = 0;      // level increases (more degradation)
    uint64_t steps_up = 0;        // level decreases (recovery)
    uint64_t frames_degraded = 0; // frames finished at level > 0
  };
  // Post-run / master-window reads.
  const Counters& counters() const { return counters_; }
  int max_level_reached() const { return max_level_reached_; }

 private:
  const Config cfg_;
  std::vector<double> window_ms_;  // ring of recent frame durations
  size_t next_ = 0;
  size_t filled_ = 0;
  int frames_since_step_ = 0;
  std::atomic<int> level_{0};
  std::atomic<double> p95_ms_{0.0};
  std::atomic<bool> draining_{false};
  Counters counters_;
  int max_level_reached_ = 0;
};

}  // namespace qserv::resilience
