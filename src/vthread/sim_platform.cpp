#include "src/vthread/sim_platform.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace qserv::vt {

SimPlatform::SimPlatform() : SimPlatform(MachineConfig{}) {}

SimPlatform::SimPlatform(MachineConfig mc) : machine_(mc) {
  QSERV_CHECK(mc.cores >= 1 && mc.ht_per_core >= 1);
  QSERV_CHECK(mc.ht_throughput >= 1.0);
  cpu_occupant_.assign(static_cast<size_t>(mc.cores * mc.ht_per_core), -1);
}

SimPlatform::~SimPlatform() = default;

// --------------------------------------------------------------------------
// Scheduling core
// --------------------------------------------------------------------------

uint32_t SimPlatform::current_checked(const char* op) const {
  QSERV_CHECK_MSG(current_ >= 0, op);
  return static_cast<uint32_t>(current_);
}

void SimPlatform::push_event(Event e) {
  e.seq = next_seq_++;
  events_.push(std::move(e));
}

void SimPlatform::resume_fiber(uint32_t idx) {
  SimFiber& f = *fibers_[idx];
  f.state = FiberState::kRunning;
  const int prev = current_;
  current_ = static_cast<int>(idx);
  f.fiber->resume();
  current_ = prev;
  if (f.fiber->finished()) {
    f.state = FiberState::kFinished;
    --live_fibers_;
    QSERV_CHECK_MSG(f.cpu == -1, "fiber finished while occupying a CPU");
    QSERV_CHECK_MSG(f.waiting_cv == nullptr,
                    "fiber finished while parked on a condvar");
  }
}

SimPlatform::WakeResult SimPlatform::block_current(const char* reason) {
  SimFiber& f = *fibers_[current_checked("block")];
  f.state = FiberState::kBlocked;
  f.block_reason = reason;
  f.fiber->switch_to_hub();
  QSERV_CHECK(f.state == FiberState::kRunning);
  return f.wake_result;
}

void SimPlatform::wake(uint32_t idx, WakeResult r) {
  SimFiber& f = *fibers_[idx];
  QSERV_CHECK_MSG(f.state == FiberState::kBlocked, "waking a non-blocked fiber");
  f.wake_result = r;
  f.state = FiberState::kReady;
  push_event({now_, 0, Event::kResume, idx, f.episode, nullptr});
}

void SimPlatform::dispatch(Event& e) {
  switch (e.kind) {
    case Event::kResume: {
      SimFiber& f = *fibers_[e.fiber];
      QSERV_CHECK(f.state == FiberState::kReady && e.token == f.episode);
      resume_fiber(e.fiber);
      break;
    }
    case Event::kTimerWake: {
      SimFiber& f = *fibers_[e.fiber];
      if (f.state != FiberState::kBlocked || e.token != f.episode) break;
      if (f.waiting_cv != nullptr) {
        auto& w = f.waiting_cv->waiters_;
        w.erase(std::find(w.begin(), w.end(), e.fiber));
        f.waiting_cv = nullptr;
      }
      wake(e.fiber, WakeResult::kTimeout);
      break;
    }
    case Event::kComputeDone:
      on_compute_done(e.fiber, e.token);
      break;
    case Event::kCallback:
      e.cb();
      break;
  }
}

void SimPlatform::run() {
  QSERV_CHECK_MSG(current_ == -1, "run() called from inside a fiber");
  while (!events_.empty()) {
    QSERV_CHECK_MSG(events_processed_ < event_limit_,
                    "simulation event limit exceeded (runaway?)");
    Event e = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    QSERV_CHECK(e.t >= now_);
    now_ = e.t;
    ++events_processed_;
    dispatch(e);
  }
  if (live_fibers_ > 0) {
    dump_deadlock();
    QSERV_CHECK_MSG(false, "virtual-time deadlock: fibers blocked forever");
  }
}

bool SimPlatform::run_until(TimePoint t) {
  QSERV_CHECK_MSG(current_ == -1, "run_until() called from inside a fiber");
  while (!events_.empty() && events_.top().t <= t) {
    QSERV_CHECK_MSG(events_processed_ < event_limit_,
                    "simulation event limit exceeded (runaway?)");
    Event e = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = e.t;
    ++events_processed_;
    dispatch(e);
  }
  if (t > now_) now_ = t;
  return !events_.empty();
}

void SimPlatform::dump_deadlock() const {
  std::fprintf(stderr, "=== virtual-time deadlock: %d live fiber(s) ===\n",
               live_fibers_);
  for (const auto& f : fibers_) {
    if (f->state == FiberState::kFinished) continue;
    std::fprintf(stderr, "  fiber '%s' state=%d blocked-on='%s'\n",
                 f->name.c_str(), static_cast<int>(f->state), f->block_reason);
  }
}

std::string SimPlatform::current_name() const {
  return current_ >= 0 ? fibers_[static_cast<size_t>(current_)]->name : "";
}

// --------------------------------------------------------------------------
// Platform interface
// --------------------------------------------------------------------------

void SimPlatform::spawn(std::string name, Domain domain,
                        std::function<void()> fn) {
  auto f = std::make_unique<SimFiber>();
  f->name = std::move(name);
  f->domain = domain;
  f->fiber = std::make_unique<Fiber>(std::move(fn));
  f->state = FiberState::kReady;
  fibers_.push_back(std::move(f));
  ++live_fibers_;
  const auto idx = static_cast<uint32_t>(fibers_.size() - 1);
  push_event({now_, 0, Event::kResume, idx, 0, nullptr});
}

void SimPlatform::call_after(Duration d, std::function<void()> fn) {
  QSERV_CHECK(d.ns >= 0);
  push_event({now_ + d, 0, Event::kCallback, 0, 0, std::move(fn)});
}

void SimPlatform::sleep_until(TimePoint t) {
  const uint32_t cur = current_checked("sleep_until");
  SimFiber& f = *fibers_[cur];
  const uint64_t tok = ++f.episode;
  push_event({std::max(t, now_), 0, Event::kTimerWake, cur, tok, nullptr});
  block_current("sleep");
}

void SimPlatform::yield() { sleep_until(now_); }

std::unique_ptr<Mutex> SimPlatform::make_mutex(std::string name) {
  return std::make_unique<SimMutex>(*this, std::move(name));
}

std::unique_ptr<CondVar> SimPlatform::make_condvar() {
  return std::make_unique<SimCondVar>(*this);
}

std::string SimPlatform::machine_description() const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%d x %s, %d-way HT (paired-context throughput %.2fx), "
                "virtual-time simulation",
                machine_.cores, machine_.cpu_name.c_str(), machine_.ht_per_core,
                machine_.ht_throughput);
  return buf;
}

// --------------------------------------------------------------------------
// CPU model
// --------------------------------------------------------------------------

int SimPlatform::busy_contexts_on_core_of(int cpu) const {
  const int base = sibling_base(cpu);
  int busy = 0;
  for (int i = 0; i < machine_.ht_per_core; ++i)
    busy += cpu_occupant_[static_cast<size_t>(base + i)] >= 0 ? 1 : 0;
  return busy;
}

double SimPlatform::rate_for(int busy_contexts) const {
  return busy_contexts <= 1 ? 1.0
                            : machine_.ht_throughput / busy_contexts;
}

int SimPlatform::find_free_cpu() const {
  // Prefer a context on a fully idle core (what an OS scheduler aware of
  // hyper-threading does); otherwise take the lowest-numbered free context.
  int any_free = -1;
  for (int cpu = 0; cpu < static_cast<int>(cpu_occupant_.size()); ++cpu) {
    if (cpu_occupant_[static_cast<size_t>(cpu)] >= 0) continue;
    if (any_free < 0) any_free = cpu;
    if (busy_contexts_on_core_of(cpu) == 0) return cpu;
  }
  return any_free;
}

void SimPlatform::settle(SimFiber& f) {
  const double elapsed = static_cast<double>((now_ - f.last_settle).ns);
  f.remaining_work_ns = std::max(0.0, f.remaining_work_ns - elapsed * f.rate);
  f.last_settle = now_;
}

void SimPlatform::schedule_finish(uint32_t idx) {
  SimFiber& f = *fibers_[idx];
  QSERV_CHECK(f.rate > 0.0);
  const auto finish_in =
      static_cast<int64_t>(std::ceil(f.remaining_work_ns / f.rate));
  push_event({now_ + Duration{finish_in}, 0, Event::kComputeDone, idx,
              ++f.compute_token, nullptr});
}

void SimPlatform::refresh_core(int any_cpu_on_core, uint32_t except) {
  const int base = sibling_base(any_cpu_on_core);
  const int busy = busy_contexts_on_core_of(any_cpu_on_core);
  const double rate = rate_for(busy);
  for (int i = 0; i < machine_.ht_per_core; ++i) {
    const int occ = cpu_occupant_[static_cast<size_t>(base + i)];
    if (occ < 0 || static_cast<uint32_t>(occ) == except) continue;
    SimFiber& f = *fibers_[static_cast<size_t>(occ)];
    settle(f);
    f.rate = rate;
    schedule_finish(static_cast<uint32_t>(occ));
  }
}

void SimPlatform::start_compute(uint32_t idx, int cpu) {
  SimFiber& f = *fibers_[idx];
  cpu_occupant_[static_cast<size_t>(cpu)] = static_cast<int>(idx);
  f.cpu = cpu;
  f.last_settle = now_;
  refresh_core(cpu);  // sets rates and finish events for this core
}

void SimPlatform::on_compute_done(uint32_t idx, uint64_t token) {
  SimFiber& f = *fibers_[idx];
  if (f.state != FiberState::kBlocked || token != f.compute_token ||
      f.cpu == -1) {
    return;  // superseded by a reschedule
  }
  settle(f);
  if (f.remaining_work_ns > 0.5) {
    schedule_finish(idx);  // numeric residue; finish the remainder
    return;
  }
  const int freed = f.cpu;
  cpu_occupant_[static_cast<size_t>(freed)] = -1;
  f.cpu = -1;
  f.rate = 1.0;
  refresh_core(freed, idx);  // sibling may speed back up
  if (!cpu_queue_.empty()) {
    const uint32_t next = cpu_queue_.front();
    cpu_queue_.pop_front();
    start_compute(next, freed);
  }
  wake(idx, WakeResult::kSignaled);
}

void SimPlatform::compute(Duration d) {
  if (d.ns <= 0) return;
  const uint32_t cur = current_checked("compute");
  SimFiber& f = *fibers_[cur];
  if (f.domain == Domain::kClientFarm) {
    // Client machines are outside the modelled server SMP: compute there
    // just takes time, with no contention.
    sleep_until(now_ + d);
    return;
  }
  f.remaining_work_ns = static_cast<double>(d.ns);
  f.rate = 0.0;
  f.last_settle = now_;
  ++f.episode;
  const int cpu = find_free_cpu();
  if (cpu >= 0) {
    start_compute(cur, cpu);
  } else {
    cpu_queue_.push_back(cur);
  }
  block_current("cpu");
}

// --------------------------------------------------------------------------
// SimMutex / SimCondVar
// --------------------------------------------------------------------------

SimMutex::~SimMutex() {
  QSERV_CHECK_MSG(owner_ == -1 && waiters_.empty(),
                  "destroying a held or awaited mutex");
}

void SimMutex::lock() {
  if (p_.current_ < 0) {
    // Hub context (setup code, scheduler callbacks): execution is
    // serialized, so the lock can only be free here — a fiber holding it
    // across a blocking operation would be a design error for any mutex
    // touched from callbacks.
    QSERV_CHECK_MSG(owner_ == -1,
                    "hub-context lock on a mutex held by a blocked fiber");
    owner_ = kHubContext;
    ++acquisitions_;
    return;
  }
  const uint32_t cur = static_cast<uint32_t>(p_.current_);
  if (owner_ == -1) {
    owner_ = static_cast<int>(cur);
    ++acquisitions_;
    return;
  }
  QSERV_CHECK_MSG(owner_ != static_cast<int>(cur), "recursive lock");
  auto& f = *p_.fibers_[cur];
  ++f.episode;
  waiters_.push_back(cur);
  const TimePoint t0 = p_.now_;
  p_.block_current(name_.c_str());
  // Ownership was handed to us by unlock().
  QSERV_CHECK(owner_ == static_cast<int>(cur));
  total_wait_ += p_.now_ - t0;
}

bool SimMutex::try_lock() {
  if (owner_ != -1) return false;
  owner_ = p_.current_ >= 0 ? p_.current_ : kHubContext;
  ++acquisitions_;
  return true;
}

void SimMutex::unlock() {
  const int expected = p_.current_ >= 0 ? p_.current_ : kHubContext;
  QSERV_CHECK_MSG(owner_ == expected, "unlock by non-owner");
  if (waiters_.empty()) {
    owner_ = -1;
    return;
  }
  const uint32_t next = waiters_.front();
  waiters_.pop_front();
  owner_ = static_cast<int>(next);
  ++acquisitions_;
  ++contended_;
  p_.wake(next, SimPlatform::WakeResult::kSignaled);
}

SimCondVar::~SimCondVar() {
  QSERV_CHECK_MSG(waiters_.empty(), "destroying an awaited condvar");
}

void SimCondVar::wait(Mutex& m) {
  const uint32_t cur = p_.current_checked("CondVar::wait");
  auto& sm = static_cast<SimMutex&>(m);
  QSERV_CHECK_MSG(sm.owner_ == static_cast<int>(cur),
                  "CondVar::wait without holding the mutex");
  auto& f = *p_.fibers_[cur];
  ++f.episode;
  waiters_.push_back(cur);
  f.waiting_cv = this;
  sm.unlock();
  const auto r = p_.block_current("condvar");
  QSERV_CHECK(r == SimPlatform::WakeResult::kSignaled);
  m.lock();
}

bool SimCondVar::wait_until(Mutex& m, TimePoint deadline) {
  const uint32_t cur = p_.current_checked("CondVar::wait_until");
  auto& sm = static_cast<SimMutex&>(m);
  QSERV_CHECK_MSG(sm.owner_ == static_cast<int>(cur),
                  "CondVar::wait_until without holding the mutex");
  auto& f = *p_.fibers_[cur];
  const uint64_t tok = ++f.episode;
  waiters_.push_back(cur);
  f.waiting_cv = this;
  p_.push_event({std::max(deadline, p_.now_), 0,
                 SimPlatform::Event::kTimerWake, cur, tok, nullptr});
  sm.unlock();
  const auto r = p_.block_current("condvar");
  m.lock();
  return r == SimPlatform::WakeResult::kSignaled;
}

void SimCondVar::signal() {
  if (waiters_.empty()) return;
  const uint32_t idx = waiters_.front();
  waiters_.pop_front();
  p_.fibers_[idx]->waiting_cv = nullptr;
  p_.wake(idx, SimPlatform::WakeResult::kSignaled);
}

void SimCondVar::broadcast() {
  while (!waiters_.empty()) signal();
}

}  // namespace qserv::vt
