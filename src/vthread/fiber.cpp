#include "src/vthread/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>

#include "src/util/check.hpp"

namespace qserv::vt {

namespace {
size_t page_size() {
  static const size_t ps = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  return ps;
}
}  // namespace

Fiber::Fiber(std::function<void()> entry, size_t stack_bytes)
    : entry_(std::move(entry)) {
  const size_t ps = page_size();
  // Round the usable stack up to whole pages and add one guard page below.
  const size_t usable = (stack_bytes + ps - 1) / ps * ps;
  stack_total_ = usable + ps;
  stack_base_ = ::mmap(nullptr, stack_total_, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  QSERV_CHECK_MSG(stack_base_ != MAP_FAILED, "fiber stack mmap failed");
  QSERV_CHECK(::mprotect(stack_base_, ps, PROT_NONE) == 0);

  QSERV_CHECK(::getcontext(&context_) == 0);
  context_.uc_stack.ss_sp = static_cast<char*>(stack_base_) + ps;
  context_.uc_stack.ss_size = usable;
  context_.uc_link = &hub_context_;  // entry return falls back to the hub

  // makecontext only passes ints; split the `this` pointer into two words.
  const auto self = reinterpret_cast<uintptr_t>(this);
  ::makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                static_cast<unsigned int>(self >> 32),
                static_cast<unsigned int>(self & 0xffffffffu));
}

Fiber::~Fiber() {
  QSERV_CHECK_MSG(!running_, "destroying a running fiber");
  if (stack_base_ != nullptr) ::munmap(stack_base_, stack_total_);
}

void Fiber::trampoline(unsigned int hi, unsigned int lo) {
  const uintptr_t ptr =
      (static_cast<uintptr_t>(hi) << 32) | static_cast<uintptr_t>(lo);
  reinterpret_cast<Fiber*>(ptr)->run();
}

void Fiber::run() {
  entry_();
  finished_ = true;
  // Returning lets uc_link (the hub context) take over.
}

void Fiber::resume() {
  QSERV_CHECK_MSG(!finished_, "resuming a finished fiber");
  QSERV_CHECK_MSG(!running_, "fiber resumed while already running");
  running_ = true;
  started_ = true;
  QSERV_CHECK(::swapcontext(&hub_context_, &context_) == 0);
  running_ = false;
}

void Fiber::switch_to_hub() {
  QSERV_CHECK_MSG(running_, "switch_to_hub outside the fiber");
  QSERV_CHECK(::swapcontext(&context_, &hub_context_) == 0);
}

}  // namespace qserv::vt
