// Time types shared by the simulated and real platforms. Strong types (not
// bare int64) so that durations and instants cannot be mixed up, and so the
// unit (nanoseconds) is encapsulated.
#pragma once

#include <cstdint>
#include <string>

namespace qserv::vt {

struct Duration {
  int64_t ns = 0;

  constexpr Duration operator+(Duration o) const { return {ns + o.ns}; }
  constexpr Duration operator-(Duration o) const { return {ns - o.ns}; }
  constexpr Duration operator*(int64_t k) const { return {ns * k}; }
  constexpr Duration operator*(int k) const { return {ns * k}; }
  constexpr Duration operator*(double k) const {
    return {static_cast<int64_t>(static_cast<double>(ns) * k)};
  }
  constexpr Duration operator/(int64_t k) const { return {ns / k}; }
  Duration& operator+=(Duration o) { ns += o.ns; return *this; }
  Duration& operator-=(Duration o) { ns -= o.ns; return *this; }
  constexpr auto operator<=>(const Duration&) const = default;

  constexpr double seconds() const { return static_cast<double>(ns) * 1e-9; }
  constexpr double millis() const { return static_cast<double>(ns) * 1e-6; }
  constexpr double micros() const { return static_cast<double>(ns) * 1e-3; }
  constexpr bool is_zero() const { return ns == 0; }
};

struct TimePoint {
  int64_t ns = 0;

  constexpr TimePoint operator+(Duration d) const { return {ns + d.ns}; }
  constexpr TimePoint operator-(Duration d) const { return {ns - d.ns}; }
  constexpr Duration operator-(TimePoint o) const { return {ns - o.ns}; }
  TimePoint& operator+=(Duration d) { ns += d.ns; return *this; }
  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr double seconds() const { return static_cast<double>(ns) * 1e-9; }

  static constexpr TimePoint zero() { return {0}; }
  static constexpr TimePoint max() { return {INT64_MAX}; }
};

constexpr Duration nanos(int64_t v) { return {v}; }
constexpr Duration micros(int64_t v) { return {v * 1000}; }
constexpr Duration millis(int64_t v) { return {v * 1000000}; }
constexpr Duration seconds(int64_t v) { return {v * 1000000000}; }
constexpr Duration seconds_d(double v) {
  return {static_cast<int64_t>(v * 1e9)};
}

}  // namespace qserv::vt
