// Stackful fibers over POSIX ucontext. Each simulated thread is a fiber;
// the SimScheduler switches between fibers and its own (main) context in a
// hub-and-spoke pattern: fibers always switch back to the hub, never to
// each other, which keeps scheduling decisions in one place and the whole
// simulation deterministic.
//
// Stacks are mmap'ed with a PROT_NONE guard page below them so stack
// overflow faults loudly instead of corrupting a neighbouring fiber.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <functional>

namespace qserv::vt {

class Fiber {
 public:
  // `entry` runs when the fiber is first resumed. When it returns, control
  // transfers back to the hub context permanently and finished() is true.
  explicit Fiber(std::function<void()> entry, size_t stack_bytes = 256 * 1024);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  // Switches from the hub into this fiber. Returns when the fiber calls
  // switch_to_hub() or its entry function returns.
  void resume();

  // Called from inside the fiber: suspends it and returns to the hub.
  void switch_to_hub();

  bool finished() const { return finished_; }

 private:
  static void trampoline(unsigned int hi, unsigned int lo);
  void run();

  std::function<void()> entry_;
  ucontext_t context_{};
  ucontext_t hub_context_{};
  void* stack_base_ = nullptr;   // mmap base (includes guard page)
  size_t stack_total_ = 0;       // mmap length
  bool started_ = false;
  bool finished_ = false;
  bool running_ = false;
};

}  // namespace qserv::vt
