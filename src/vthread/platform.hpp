// Abstract execution platform. The game server, the clients and the
// virtual network are written against this interface; two implementations
// exist:
//
//  * SimPlatform (sim_platform.hpp) — a deterministic virtual-time SMP
//    simulator. Threads are fibers, time advances only through compute() /
//    sleeps / blocking, and the machine's CPU and hyper-threading layout is
//    modelled explicitly. This substitutes for the paper's quad Xeon with
//    hyper-threading, which we do not have.
//  * RealPlatform (real_platform.hpp) — std::thread / std::mutex /
//    std::condition_variable, for running the identical server code on
//    actual SMP hardware. compute() is a no-op there because real work
//    already consumes real time.
//
// The contract mirrors pthreads closely on purpose: the paper's port of the
// Quake server is a pthreads port, and the code in core/ should read like
// one.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/vthread/time.hpp"

namespace qserv::vt {

// Which machine a thread runs on. The paper dedicates one SMP to the server
// and separate client machines to the bots; kClientFarm is an
// infinite-capacity domain so client compute never perturbs the modelled
// server machine.
enum class Domain : uint8_t { kServer, kClientFarm };

class Mutex {
 public:
  virtual ~Mutex() = default;
  virtual void lock() = 0;
  virtual void unlock() = 0;
  virtual bool try_lock() = 0;

  // Contention statistics, cheap enough to keep always-on.
  virtual uint64_t acquisitions() const = 0;
  virtual uint64_t contended_acquisitions() const = 0;
  virtual Duration total_wait() const = 0;
};

// RAII guard compatible with any platform Mutex.
class LockGuard {
 public:
  explicit LockGuard(Mutex& m) : m_(m) { m_.lock(); }
  ~LockGuard() { m_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

class CondVar {
 public:
  virtual ~CondVar() = default;
  // Caller must hold `m`. Atomically releases, blocks, re-acquires.
  virtual void wait(Mutex& m) = 0;
  // Returns false if the deadline passed without a signal.
  virtual bool wait_until(Mutex& m, TimePoint deadline) = 0;
  virtual void signal() = 0;
  virtual void broadcast() = 0;
};

class Platform {
 public:
  virtual ~Platform() = default;

  virtual TimePoint now() const = 0;

  // Consumes CPU for `d` of nominal single-core time on the calling
  // thread's domain. On the simulated platform this is where modelled
  // computation cost is charged (and may take longer than `d` in virtual
  // time under hyper-threading or CPU oversubscription); on the real
  // platform it is a no-op.
  virtual void compute(Duration d) = 0;

  virtual void sleep_until(TimePoint t) = 0;
  void sleep_for(Duration d) { sleep_until(now() + d); }
  virtual void yield() = 0;

  virtual std::unique_ptr<Mutex> make_mutex(std::string name) = 0;
  virtual std::unique_ptr<CondVar> make_condvar() = 0;

  // Starts a thread. All threads must be spawned before run()/join_all().
  virtual void spawn(std::string name, Domain domain,
                     std::function<void()> fn) = 0;

  // Runs `fn` at (approximately, for the real platform) `d` from now, on
  // no particular thread. `fn` must not block.
  virtual void call_after(Duration d, std::function<void()> fn) = 0;

  // Blocks the caller until every spawned thread has finished. For the
  // simulated platform this drives the event loop.
  virtual void join_all() = 0;

  // Human-readable description of the machine model (Table 1).
  virtual std::string machine_description() const = 0;

  // True on the virtual-time platform. Used by code that needs a real
  // wall-clock safety net (e.g. the worker watchdog's periodic timer)
  // which on the simulated platform would only add events without adding
  // coverage — fibers cannot wedge between scheduling points there.
  virtual bool is_simulated() const { return false; }
};

}  // namespace qserv::vt
