// Deterministic virtual-time SMP platform.
//
// All simulated threads are fibers multiplexed onto the single OS thread
// that calls run(); exactly one fiber executes at a time (hub-and-spoke via
// Fiber), so the simulation is data-race free by construction and
// bit-deterministic: the event queue is ordered by (virtual time, sequence
// number) and nothing else.
//
// Virtual time advances only through the event queue. Fibers consume time
// via compute() — which occupies a modelled logical CPU — and via sleeps
// and blocking synchronization. The machine model is `cores ×
// ht_per_core` logical CPUs; when k hyper-thread contexts of one core are
// busy, each runs at (ht_throughput / k) of nominal speed (ht_throughput
// defaults to 1.25: two busy hyper-threads together deliver 1.25× one).
// This reproduces the paper's platform, where 8 hardware threads on 4
// cores barely outperform 4.
//
// Threads in Domain::kClientFarm bypass the CPU model entirely (the
// paper's client machines are separate hardware): their compute() just
// advances their own virtual clock.
#pragma once

#include <deque>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "src/util/check.hpp"
#include "src/vthread/fiber.hpp"
#include "src/vthread/platform.hpp"

namespace qserv::vt {

class SimPlatform;

// FIFO mutex with ownership hand-off on unlock: the longest waiter is the
// next owner, which keeps lock acquisition order deterministic and fair —
// the natural model for the paper's pthread mutexes under contention.
class SimMutex final : public Mutex {
 public:
  SimMutex(SimPlatform& p, std::string name) : p_(p), name_(std::move(name)) {}
  ~SimMutex() override;

  void lock() override;
  void unlock() override;
  bool try_lock() override;

  uint64_t acquisitions() const override { return acquisitions_; }
  uint64_t contended_acquisitions() const override { return contended_; }
  Duration total_wait() const override { return total_wait_; }
  const std::string& name() const { return name_; }

 private:
  friend class SimCondVar;

  // Owner value used when the hub (non-fiber) context holds the mutex.
  static constexpr int kHubContext = -2;

  SimPlatform& p_;
  std::string name_;
  int owner_ = -1;                // fiber index, -1 when free
  std::deque<uint32_t> waiters_;  // fiber indices, FIFO
  uint64_t acquisitions_ = 0;
  uint64_t contended_ = 0;
  Duration total_wait_{};
};

class SimCondVar final : public CondVar {
 public:
  explicit SimCondVar(SimPlatform& p) : p_(p) {}
  ~SimCondVar() override;

  void wait(Mutex& m) override;
  bool wait_until(Mutex& m, TimePoint deadline) override;
  void signal() override;
  void broadcast() override;

 private:
  friend class SimPlatform;

  SimPlatform& p_;
  std::deque<uint32_t> waiters_;  // fiber indices, FIFO
};

class SimPlatform final : public Platform {
 public:
  struct MachineConfig {
    int cores = 4;
    int ht_per_core = 2;
    // Combined throughput of all busy hyper-thread contexts on one core,
    // relative to a single busy context. 1.25 ≈ published SMT gains for
    // the NetBurst-era Xeons of the paper's testbed.
    double ht_throughput = 1.25;
    std::string cpu_name = "simulated Xeon 1.4 GHz";
  };

  SimPlatform();
  explicit SimPlatform(MachineConfig mc);
  ~SimPlatform() override;

  SimPlatform(const SimPlatform&) = delete;
  SimPlatform& operator=(const SimPlatform&) = delete;

  // Platform interface -----------------------------------------------------
  TimePoint now() const override { return now_; }
  void compute(Duration d) override;
  void sleep_until(TimePoint t) override;
  void yield() override;
  std::unique_ptr<Mutex> make_mutex(std::string name) override;
  std::unique_ptr<CondVar> make_condvar() override;
  void spawn(std::string name, Domain domain, std::function<void()> fn) override;
  void call_after(Duration d, std::function<void()> fn) override;
  void join_all() override { run(); }
  std::string machine_description() const override;
  bool is_simulated() const override { return true; }

  // Simulation control ------------------------------------------------------
  // Processes events until every fiber finishes. Aborts with a diagnostic
  // dump if the system deadlocks (fibers blocked, no pending events).
  void run();
  // Processes events with time <= t; returns true if events remain.
  bool run_until(TimePoint t);

  uint64_t events_processed() const { return events_processed_; }
  void set_event_limit(uint64_t limit) { event_limit_ = limit; }
  const MachineConfig& machine() const { return machine_; }
  int live_fibers() const { return live_fibers_; }

  // Name of the currently running fiber ("" outside any fiber).
  std::string current_name() const;

 private:
  friend class SimMutex;
  friend class SimCondVar;

  enum class FiberState : uint8_t { kReady, kRunning, kBlocked, kFinished };
  enum class WakeResult : uint8_t { kSignaled, kTimeout };

  struct SimFiber {
    std::string name;
    Domain domain = Domain::kServer;
    std::unique_ptr<Fiber> fiber;
    FiberState state = FiberState::kReady;
    uint64_t episode = 0;        // blocking-episode counter
    WakeResult wake_result = WakeResult::kSignaled;
    const char* block_reason = "";
    SimCondVar* waiting_cv = nullptr;  // set while parked on a condvar
    // CPU/compute bookkeeping (valid while computing).
    int cpu = -1;
    uint64_t compute_token = 0;
    double remaining_work_ns = 0.0;
    double rate = 1.0;
    TimePoint last_settle{};
  };

  struct Event {
    TimePoint t;
    uint64_t seq = 0;
    enum Kind : uint8_t { kResume, kTimerWake, kComputeDone, kCallback } kind;
    uint32_t fiber = 0;
    uint64_t token = 0;  // episode (resume/timer) or compute token
    std::function<void()> cb;

    bool operator>(const Event& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  // --- scheduling core ---
  uint32_t current_checked(const char* op) const;
  void push_event(Event e);
  void dispatch(Event& e);
  void resume_fiber(uint32_t idx);
  // Parks the current fiber (state -> kBlocked); resumes when woken.
  // Returns how the fiber was woken.
  WakeResult block_current(const char* reason);
  // Wakes a blocked fiber (eager decision: caller has removed it from any
  // waiter list); schedules its resume at the current time.
  void wake(uint32_t idx, WakeResult r);
  void dump_deadlock() const;

  // --- CPU model ---
  int sibling_base(int cpu) const { return cpu - (cpu % machine_.ht_per_core); }
  int busy_contexts_on_core_of(int cpu) const;
  double rate_for(int busy_contexts) const;
  int find_free_cpu() const;
  void settle(SimFiber& f);
  void schedule_finish(uint32_t idx);
  void start_compute(uint32_t idx, int cpu);
  void refresh_core(int any_cpu_on_core, uint32_t except = UINT32_MAX);
  void on_compute_done(uint32_t idx, uint64_t token);

  MachineConfig machine_;
  TimePoint now_{};
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  uint64_t event_limit_ = UINT64_MAX;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::vector<std::unique_ptr<SimFiber>> fibers_;
  int current_ = -1;
  int live_fibers_ = 0;
  std::vector<int> cpu_occupant_;     // logical cpu -> fiber index or -1
  std::deque<uint32_t> cpu_queue_;    // fibers waiting for a logical cpu
};

}  // namespace qserv::vt
