#include "src/vthread/real_platform.hpp"

#include <cstdio>

#include "src/util/check.hpp"

namespace qserv::vt {

void RealMutex::lock() {
  if (m_.try_lock()) {
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  m_.lock();
  const auto waited = std::chrono::steady_clock::now() - t0;
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
  contended_.fetch_add(1, std::memory_order_relaxed);
  total_wait_ns_.fetch_add(
      std::chrono::duration_cast<std::chrono::nanoseconds>(waited).count(),
      std::memory_order_relaxed);
}

bool RealMutex::try_lock() {
  if (!m_.try_lock()) return false;
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool RealCondVar::wait_until(Mutex& m, TimePoint deadline) {
  return cv_.wait_until(m, p_.to_chrono(deadline)) == std::cv_status::no_timeout;
}

RealPlatform::RealPlatform(bool spin_compute)
    : epoch_(std::chrono::steady_clock::now()), spin_compute_(spin_compute) {
  timer_thread_ = std::thread([this] { timer_loop(); });
}

RealPlatform::~RealPlatform() {
  join_all();
  {
    std::lock_guard<std::mutex> g(timer_mu_);
    timer_stop_ = true;
  }
  timer_cv_.notify_all();
  timer_thread_.join();
}

TimePoint RealPlatform::now() const {
  const auto d = std::chrono::steady_clock::now() - epoch_;
  return {std::chrono::duration_cast<std::chrono::nanoseconds>(d).count()};
}

void RealPlatform::compute(Duration d) {
  if (!spin_compute_ || d.ns <= 0) return;
  const TimePoint until = now() + d;
  while (now() < until) {
    // Busy wait; calibration mode only.
  }
}

void RealPlatform::sleep_until(TimePoint t) {
  std::this_thread::sleep_until(to_chrono(t));
}

std::unique_ptr<Mutex> RealPlatform::make_mutex(std::string name) {
  return std::make_unique<RealMutex>(std::move(name));
}

std::unique_ptr<CondVar> RealPlatform::make_condvar() {
  return std::make_unique<RealCondVar>(*this);
}

void RealPlatform::spawn(std::string name, Domain /*domain*/,
                         std::function<void()> fn) {
  std::lock_guard<std::mutex> g(threads_mu_);
  (void)name;
  threads_.emplace_back(std::move(fn));
}

void RealPlatform::call_after(Duration d, std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> g(timer_mu_);
    timers_.emplace(now() + d, std::move(fn));
  }
  timer_cv_.notify_all();
}

void RealPlatform::timer_loop() {
  std::unique_lock<std::mutex> g(timer_mu_);
  while (!timer_stop_) {
    if (timers_.empty()) {
      timer_cv_.wait(g);
      continue;
    }
    const TimePoint next = timers_.begin()->first;
    if (now() < next) {
      timer_cv_.wait_until(g, to_chrono(next));
      continue;
    }
    auto fn = std::move(timers_.begin()->second);
    timers_.erase(timers_.begin());
    ++timer_callbacks_running_;
    g.unlock();
    fn();
    g.lock();
    --timer_callbacks_running_;
    timer_cv_.notify_all();
  }
}

void RealPlatform::join_all() {
  // Drain in rounds: a timer callback (e.g. a shard supervisor restoring
  // a crashed engine) may spawn fresh threads after the first swap, so
  // keep going until a full round finds nothing new.
  for (;;) {
    std::vector<std::thread> taken;
    {
      std::lock_guard<std::mutex> g(threads_mu_);
      taken.swap(threads_);
    }
    for (auto& t : taken) t.join();
    // A timer callback (typically the stop signal) can still be mid-flight
    // on the timer thread; returning before it finishes would let the
    // caller destroy the objects the callback is touching.
    {
      std::unique_lock<std::mutex> g(timer_mu_);
      timer_cv_.wait(g, [this] { return timer_callbacks_running_ == 0; });
    }
    std::lock_guard<std::mutex> g(threads_mu_);
    if (threads_.empty()) return;
  }
}

std::string RealPlatform::machine_description() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "host hardware, %u logical CPU(s), real time",
                std::thread::hardware_concurrency());
  return buf;
}

}  // namespace qserv::vt
