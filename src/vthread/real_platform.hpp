// Real-thread implementation of the Platform interface: std::thread,
// std::mutex, std::condition_variable_any, wall-clock time. Lets the exact
// same server code run on actual SMP hardware; on a real multi-core host
// the parallel server exhibits true hardware parallelism.
//
// compute() is a no-op here: on real hardware the modelled work has
// already been done by the caller in real time. (An optional calibration
// spin can be enabled for hosts whose real work is much cheaper than the
// modelled 2004-era costs.)
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "src/vthread/platform.hpp"

namespace qserv::vt {

class RealMutex final : public Mutex {
 public:
  explicit RealMutex(std::string name) : name_(std::move(name)) {}

  void lock() override;
  void unlock() override { m_.unlock(); }
  bool try_lock() override;

  uint64_t acquisitions() const override { return acquisitions_.load(); }
  uint64_t contended_acquisitions() const override { return contended_.load(); }
  Duration total_wait() const override { return {total_wait_ns_.load()}; }

 private:
  std::string name_;
  std::mutex m_;
  std::atomic<uint64_t> acquisitions_{0};
  std::atomic<uint64_t> contended_{0};
  std::atomic<int64_t> total_wait_ns_{0};
};

class RealPlatform;

class RealCondVar final : public CondVar {
 public:
  explicit RealCondVar(const RealPlatform& p) : p_(p) {}

  void wait(Mutex& m) override { cv_.wait(m); }
  bool wait_until(Mutex& m, TimePoint deadline) override;
  void signal() override { cv_.notify_one(); }
  void broadcast() override { cv_.notify_all(); }

 private:
  const RealPlatform& p_;
  std::condition_variable_any cv_;
};

class RealPlatform final : public Platform {
 public:
  // `spin_compute` makes compute() busy-wait for the modelled duration —
  // useful to reproduce 2004-scale per-request costs on fast modern CPUs.
  explicit RealPlatform(bool spin_compute = false);
  ~RealPlatform() override;

  TimePoint now() const override;
  void compute(Duration d) override;
  void sleep_until(TimePoint t) override;
  void yield() override { std::this_thread::yield(); }
  std::unique_ptr<Mutex> make_mutex(std::string name) override;
  std::unique_ptr<CondVar> make_condvar() override;
  void spawn(std::string name, Domain domain, std::function<void()> fn) override;
  void call_after(Duration d, std::function<void()> fn) override;
  void join_all() override;
  std::string machine_description() const override;

  std::chrono::steady_clock::time_point to_chrono(TimePoint t) const {
    return epoch_ + std::chrono::nanoseconds(t.ns);
  }

 private:
  void timer_loop();

  std::chrono::steady_clock::time_point epoch_;
  bool spin_compute_;

  std::mutex threads_mu_;
  std::vector<std::thread> threads_;

  // Timer service for call_after.
  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::multimap<TimePoint, std::function<void()>> timers_;
  bool timer_stop_ = false;
  int timer_callbacks_running_ = 0;  // join_all waits for these to drain
  std::thread timer_thread_;
};

}  // namespace qserv::vt
