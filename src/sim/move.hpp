// Move command execution (§2.3 of the paper): player figure motion
// (slide-move physics against world geometry and other players), touch
// interactions (item pickup, teleporters), and the long-range actions the
// move's buttons request.
#pragma once

#include "src/net/protocol.hpp"
#include "src/sim/scratch.hpp"
#include "src/sim/world.hpp"

namespace qserv::sim {

// The short-range bounding box of a move: the player's bounds expanded by
// the maximum distance a player can travel in a single move, plus a touch
// margin. This is the region the move may affect (and the region the
// conservative short-range lock covers).
Aabb move_bounds(const Entity& player, const net::MoveCmd& cmd);

// The lateral pad used by directional long-range locks.
inline constexpr float kDirectionalLockPad = 64.0f;

struct MoveStats {
  int traces = 0;
  int brushes_tested = 0;
  int entities_scanned = 0;
  int nodes_visited = 0;
  int touches = 0;
  bool teleported = false;
  bool fired_hitscan = false;
  bool threw_grenade = false;
  bool hit_player = false;
};

// Executes one move command. The caller must hold the region locks
// required by the active locking policy for move_bounds() (and for the
// long-range region if cmd requests an attack/throw). The player is
// relinked into the areanode tree afterwards. `order` is the move's
// serialization index; it tags any projectile this move queues so the
// world phase can materialize projectiles in a replayable order.
// `scratch`, when given, provides reusable gather buffers (hot path).
MoveStats execute_move(World& world, Entity& player, const net::MoveCmd& cmd,
                       vt::TimePoint now, NodeListLocks* locks,
                       EventSink* events, uint64_t order = 0,
                       MoveScratch* scratch = nullptr);

}  // namespace qserv::sim
