// Deathmatch rules: damage, armor absorption, frags, and respawn.
#pragma once

#include <cstdint>

#include "src/sim/world.hpp"

namespace qserv::sim {

// Applies `damage` to `victim` (armor absorbs 2/3 of what it can). If the
// victim dies it is fragged (attacker scores, self-kills score -1), a
// kFrag event is emitted, and the victim respawns immediately at a fresh
// spawn point. Returns true if the victim died.
bool apply_damage(World& world, Entity& victim, uint32_t attacker_id,
                  int damage, NodeListLocks* locks, EventSink* events);

// Scoreboard line used by examples and tests.
struct ScoreEntry {
  uint32_t id = 0;
  std::string name;
  int frags = 0;
  uint32_t deaths = 0;
};

// All players sorted by frags (descending), then id.
std::vector<ScoreEntry> scoreboard(const World& world);

}  // namespace qserv::sim
