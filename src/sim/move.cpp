#include "src/sim/move.hpp"

#include <algorithm>
#include <cmath>

#include "src/sim/combat.hpp"
#include "src/sim/items.hpp"
#include "src/util/check.hpp"

namespace qserv::sim {

namespace {

// Maximum distance any single move command can cover: max speed for the
// longest command duration the protocol allows, plus gravity-driven fall.
float max_travel(const net::MoveCmd& cmd) {
  const float dt = static_cast<float>(cmd.msec) * 1e-3f;
  return kMaxPlayerSpeed * dt + 0.5f * kGravity * dt * dt + 8.0f;
}

constexpr float kTouchMargin = 2.0f;

// Clips velocity against a plane normal (Quake's PM_ClipVelocity with
// overbounce 1): removes the into-plane component.
Vec3 clip_velocity(const Vec3& v, const Vec3& normal) {
  return v - normal * v.dot(normal);
}

struct ClipContext {
  World& world;
  const std::vector<uint32_t>& solids;  // candidate blocking entities
  const Entity& self;
  MoveStats& stats;
};

// Trace against world brushes and candidate solid entities combined.
spatial::TraceResult clip_move(ClipContext& ctx, const Vec3& start,
                               const Vec3& end) {
  auto tr = ctx.world.collision().trace_box(start, end, ctx.self.mins,
                                            ctx.self.maxs);
  ++ctx.stats.traces;
  ctx.stats.brushes_tested += tr.brushes_tested;
  ctx.world.charge(ctx.world.costs().per_brush_trace * tr.brushes_tested);

  // Clip against other players: expand their boxes by our extents and
  // intersect the origin ray (Minkowski), keeping the nearest hit.
  const Vec3 delta = end - start;
  for (const uint32_t id : ctx.solids) {
    const Entity* e = ctx.world.get(id);
    if (e == nullptr || e->id == ctx.self.id || !e->solid || !e->is_player())
      continue;
    const Aabb expanded{e->origin + e->mins - ctx.self.maxs,
                        e->origin + e->maxs - ctx.self.mins};
    Vec3 normal;
    const float f = spatial::ray_vs_aabb(start, delta, expanded, &normal);
    if (f >= 0.0f && f < tr.fraction) {
      // Back off as the brush trace does.
      const float len = delta.length();
      const float backoff = len > 0.0f ? spatial::kTraceEpsilon / len : 0.0f;
      tr.fraction = std::max(0.0f, f - backoff);
      tr.endpos = start + delta * tr.fraction;
      tr.normal = normal;
    }
  }
  return tr;
}

}  // namespace

Aabb move_bounds(const Entity& player, const net::MoveCmd& cmd) {
  return player.bounds().expanded(max_travel(cmd) + kTouchMargin + 16.0f);
}

MoveStats execute_move(World& world, Entity& player, const net::MoveCmd& cmd,
                       vt::TimePoint now, NodeListLocks* locks,
                       EventSink* events, uint64_t order,
                       MoveScratch* scratch) {
  MoveStats stats;
  world.charge(world.costs().move_base);
  if (!player.alive()) return stats;

  player.yaw_deg = cmd.yaw_deg;
  const float dt = static_cast<float>(cmd.msec) * 1e-3f;

  // Gather everything the move may interact with (the paper's object
  // list for the move), from the locked region. gather() appends, so the
  // reused scratch buffer is cleared first.
  GatherStats gs;
  std::vector<uint32_t> local_nearby;
  std::vector<uint32_t>& nearby =
      scratch != nullptr ? scratch->nearby : local_nearby;
  nearby.clear();
  world.gather(move_bounds(player, cmd), nearby, locks, &gs);
  stats.nodes_visited += gs.nodes_visited;
  stats.entities_scanned += gs.entities_scanned;

  // --- wish velocity from the command (ground movement) ---
  const ViewAngles view{cmd.yaw_deg, 0.0f};
  Vec3 wish = view.forward() * cmd.forward + view.right() * cmd.side;
  wish.z = 0.0f;
  const float wish_speed = std::min(wish.length(), kMaxPlayerSpeed);
  const Vec3 wish_dir = wish.normalized();

  Vec3 vel = player.velocity;
  if (player.on_ground) {
    // Friction.
    const float speed = std::sqrt(vel.x * vel.x + vel.y * vel.y);
    if (speed > 0.1f) {
      const float drop = speed * kGroundFriction * dt;
      const float scale = std::max(0.0f, speed - drop) / speed;
      vel.x *= scale;
      vel.y *= scale;
    } else {
      vel.x = vel.y = 0.0f;
    }
    // Acceleration toward the wish velocity.
    const float current = vel.dot(wish_dir);
    const float add = std::min(wish_speed - current, kPlayerAccel * wish_speed * dt);
    if (add > 0.0f) vel += wish_dir * add;
    if ((cmd.buttons & net::kButtonJump) != 0) {
      vel.z = kJumpVelocity;
      player.on_ground = false;
    }
  }
  if (!player.on_ground) vel.z -= kGravity * dt;

  // --- slide move (PM_FlyMove): up to 4 clip iterations ---
  ClipContext ctx{world, nearby, player, stats};
  Vec3 pos = player.origin;
  float time_left = dt;
  for (int iter = 0; iter < 4 && time_left > 0.0f; ++iter) {
    const Vec3 target = pos + vel * time_left;
    const auto tr = clip_move(ctx, pos, target);
    if (tr.start_solid) break;  // wedged; stay put this move
    pos = tr.endpos;
    if (!tr.hit()) break;
    time_left *= 1.0f - tr.fraction;
    vel = clip_velocity(vel, tr.normal);
    if (tr.normal.z > 0.7f) player.on_ground = true;
  }
  player.origin = pos;
  player.velocity = vel;

  // Ground check (short downward probe).
  {
    const auto tr = clip_move(ctx, pos, pos + Vec3{0, 0, -2.0f});
    player.on_ground = tr.hit() && tr.normal.z > 0.7f;
    if (player.on_ground && vel.z < 0.0f) player.velocity.z = 0.0f;
  }

  // --- touch interactions within the final box ---
  const Aabb touch_box = player.bounds().expanded(kTouchMargin);
  for (const uint32_t id : nearby) {
    Entity* e = world.get(id);
    if (e == nullptr || e->id == player.id) continue;
    if (!e->bounds().intersects(touch_box)) continue;
    if (e->type == EntityType::kItem) {
      if (try_pickup(world, player, *e, now, events)) {
        ++stats.touches;
        world.charge(world.costs().per_touch);
      }
    } else if (e->type == EntityType::kTeleporter) {
      // Teleport: relocate to the destination — possibly a far region of
      // the areanode tree (§2.3).
      player.origin = e->teleport_dest;
      player.velocity = Vec3{};
      stats.teleported = true;
      ++stats.touches;
      world.charge(world.costs().per_touch);
      if (events != nullptr) {
        events->emit(
            make_event(EventKind::kTeleport, player.id, 0, player.origin));
      }
      break;  // one teleport per move
    }
  }

  // --- long-range actions (caller holds the long-range locks) ---
  if ((cmd.buttons & net::kButtonAttack) != 0) {
    const auto r = fire_hitscan(world, player, cmd.pitch_deg, now, locks,
                                events, scratch);
    stats.fired_hitscan = r.fired;
    stats.hit_player |= r.hit_player;
    stats.brushes_tested += r.brushes_tested;
    stats.entities_scanned += r.entities_scanned;
  } else if ((cmd.buttons & net::kButtonThrow) != 0) {
    const auto r = throw_grenade(world, player, cmd.pitch_deg, now, locks,
                                 events, order, scratch);
    stats.threw_grenade = r.fired;
    stats.hit_player |= r.hit_player;
    stats.brushes_tested += r.brushes_tested;
    stats.entities_scanned += r.entities_scanned;
  }

  // Remove the player's object from its old areanode and link it at the
  // new position.
  world.relink(player, locks);
  return stats;
}

}  // namespace qserv::sim
