// Calibrated virtual-CPU costs of game-server operations.
//
// On the paper's testbed these costs were simply how long the Quake code
// took on a 1.4 GHz Xeon; on the simulated platform every operation
// charges its modelled cost through Platform::compute(). The absolute
// values are calibrated (see EXPERIMENTS.md) so that the *ratios* the
// paper reports hold: world physics < 5% of a frame, reply processing
// >= 2x request processing, and a sequential server that saturates near
// 128 players at ~30 ms client frames.
#pragma once

#include "src/vthread/time.hpp"

namespace qserv::sim {

struct CostModel {
  // --- request processing ---
  vt::Duration recv_parse = vt::micros(6);        // recvfrom + parse, per request
  vt::Duration move_base = vt::micros(50);        // fixed part of move execution
  // Weapon simulation on top of traces/gathers; executed while the
  // long-range region locks are held.
  vt::Duration hitscan_exec = vt::micros(120);
  vt::Duration grenade_exec = vt::micros(100);
  vt::Duration per_brush_trace = vt::nanos(500);  // per brush tested in a trace
  vt::Duration per_entity_scan = vt::nanos(200);  // per object-list entry tested
  vt::Duration per_node_visit = vt::nanos(300);   // per areanode visited
  vt::Duration per_touch = vt::micros(4);         // per touch interaction applied
  // Region-lock bookkeeping: determining the region and one lock/unlock
  // pair (the parallelization overhead of §4.1).
  vt::Duration lock_op = vt::micros(6);
  // Short per-node object-list lock/unlock (parent-areanode locking).
  vt::Duration list_lock_op = vt::micros(1);

  // --- world physics phase ---
  // Charged once per server frame; servers near saturation run thousands
  // of short frames per second, so these stay small to keep the world
  // phase under 5% of execution time (ISPASS'01 measurement).
  vt::Duration world_base = vt::micros(8);
  vt::Duration per_projectile_step = vt::micros(2);
  vt::Duration per_item_check = vt::nanos(50);

  // --- reply processing ---
  // Charged for every client of the thread's complete set each frame:
  // the global-state buffer is used to update every client's message
  // buffer regardless of whether it is being replied to (§3.3). This is
  // the dominant per-frame constant; it is what stretches frames enough
  // for several requests to batch into one frame near saturation.
  vt::Duration per_buffer_update = vt::nanos(2500);
  vt::Duration reply_base = vt::micros(6);         // per client replied to
  vt::Duration per_interest_check = vt::nanos(200); // cheap distance culling
  vt::Duration per_pvs_check = vt::nanos(80);       // PVS matrix lookup
  vt::Duration per_los_trace_brush = vt::nanos(450);// line-of-sight trace
                                                    // (maps without PVS)
  vt::Duration per_visible_entity = vt::nanos(1500); // delta-encode one entity
  vt::Duration per_event = vt::nanos(200);
  vt::Duration send_syscall = vt::micros(4);

  // --- reply hot path (ServerConfig::reply, DESIGN.md §15) ---
  // Charged only on the opt-in SoA/shared-baseline path; the legacy
  // entries above remain the bit-identity fallback. Ratios against the
  // legacy costs reflect what the restructuring removes:
  //  * per_view_entity: one SoA row fill + one canonical 22-byte wire
  //    record encode, paid once per entity per frame (vs once per
  //    entity per *viewer* under per_visible_entity).
  //  * per_interest_check_soa: the same distance/parity test over
  //    contiguous packed arrays — no virtual dispatch, no Entity-sized
  //    cache-line pulls (~4x cheaper than per_interest_check).
  //  * per_shared_entity: per-viewer finalize of one visible entity —
  //    delta-mask compare against the baseline plus a span copy of the
  //    pre-encoded record (~5x cheaper than per_visible_entity).
  //  * per_buffer_ref: appending a shared-event-block reference to a
  //    client's reply buffer instead of copying the events.
  vt::Duration per_view_entity = vt::nanos(60);
  vt::Duration per_interest_check_soa = vt::nanos(50);
  vt::Duration per_shared_entity = vt::nanos(300);
  vt::Duration per_buffer_ref = vt::nanos(300);

  // --- misc ---
  vt::Duration select_syscall = vt::micros(5);
  vt::Duration signal_syscall = vt::micros(15);

  // Returns a copy with every cost multiplied by `f` (machine-speed knob).
  CostModel scaled(double f) const;
};

}  // namespace qserv::sim
