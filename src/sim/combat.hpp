// Long-range interactions (§4.3 of the paper):
//
//  * fire_hitscan — "type 2" objects: the interaction is fully simulated
//    during request processing. Under optimized locking the server locks
//    the *directional* bounding box from the shooter to the world edge.
//  * throw_grenade — "type 1" objects: simulated for the first
//    kGrenadeRequestRange during request processing, then handed to the
//    world-physics phase. Under optimized locking the server locks an
//    *expanded* bounding box covering that range.
//
// Callers must hold the region locks mandated by the active locking
// policy before invoking these.
#pragma once

#include "src/sim/scratch.hpp"
#include "src/sim/world.hpp"

namespace qserv::sim {

struct AttackResult {
  bool fired = false;          // false if on cooldown / out of ammo
  bool hit_player = false;
  uint32_t victim = 0;
  int brushes_tested = 0;
  int entities_scanned = 0;
};

// Instant-hit shot along the shooter's view direction with the equipped
// weapon (blaster or railgun). `scratch`, when given, provides the reusable
// ray-gather buffer.
AttackResult fire_hitscan(World& world, Entity& shooter, float pitch_deg,
                          vt::TimePoint now, NodeListLocks* locks,
                          EventSink* events, MoveScratch* scratch = nullptr);

// Grenade toss along the view direction. Consumes one grenade. `order`
// tags the queued projectile with the throwing move's serialization index.
AttackResult throw_grenade(World& world, Entity& shooter, float pitch_deg,
                           vt::TimePoint now, NodeListLocks* locks,
                           EventSink* events, uint64_t order = 0,
                           MoveScratch* scratch = nullptr);

// Radius damage at `pos` attributed to `owner`; used by grenades both at
// request time (early detonation) and in the world phase.
void explode_at(World& world, uint32_t owner, const Vec3& pos,
                NodeListLocks* locks, EventSink* events);

// The view direction of a player (unit vector).
Vec3 aim_dir(const Entity& player, float pitch_deg);

// Eye position a player shoots from.
Vec3 eye_pos(const Entity& player);

}  // namespace qserv::sim
