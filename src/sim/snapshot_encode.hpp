// Shared-baseline snapshot encoding (DESIGN.md §15): per-client wire
// bodies assembled from the frame view's canonical per-entity records by
// span copy, byte-identical to net::encode / net::encode_delta over the
// same entity set. The expensive parts — field serialization (done once
// per entity in FrameView::rebuild) and PVS row computation (done once
// per viewer cluster in ClusterVisCache) — are shared across viewers;
// what remains per client is the mask comparison and the memcpy.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/net/bytestream.hpp"
#include "src/net/protocol.hpp"
#include "src/sim/frame_view.hpp"

namespace qserv::sim {

class World;

// Byte-per-row visibility of a PVS cluster against the frame view's
// player rows, built once per (cluster, frame) and then shared by every
// viewer in that cluster. Rows are pooled across frames; priming is
// single-threaded (the reply-prepare step), lookups are read-only and
// safe from concurrent reply workers.
class ClusterVisCache {
 public:
  // Starts a new frame: forgets all rows, keeps pooled capacity.
  void begin_frame();

  // Ensures the row for `cluster` exists and returns it. Charges
  // per_pvs_check per player row on first build (the shared cost every
  // same-cluster viewer then rides on). Returns null for cluster -1
  // (conservative visible-to-all) and for maps without PVS.
  const std::vector<uint8_t>* prime(const World& world, const FrameView& view,
                                    int cluster);

  // Read-only lookup for the finalize stage; null if never primed.
  const std::vector<uint8_t>* row_for(int cluster) const;

 private:
  std::unordered_map<int, size_t> index_;  // cluster -> pool slot
  std::vector<std::vector<uint8_t>> pool_;
  size_t used_ = 0;
};

// Reusable per-thread scratch for encode_delta_from_view; all vectors
// keep capacity across frames so steady-state encoding allocates nothing.
struct SharedEncodeScratch {
  net::ByteWriter body;
  std::vector<uint32_t> removed;
  // (id, baseline index), sorted by id, for O(log n) baseline lookup.
  std::vector<std::pair<uint32_t, uint32_t>> base_ids;
};

// Full snapshot from view rows: byte-identical to net::encode(snap, w)
// when snap.entities holds exactly the entities of `rows`. The entity
// section is a span copy of the view's canonical records.
void encode_full_from_view(const net::Snapshot& snap, const FrameView& view,
                           const std::vector<uint32_t>& rows,
                           net::ByteWriter& w);

// Delta snapshot from view rows against `baseline`: byte-identical to
// net::encode_delta(snap, baseline, baseline_frame) when snap.entities
// holds exactly the entities of `rows` (both are id-ascending, which the
// sweep guarantees). Returns the number of entity records written.
int encode_delta_from_view(const net::Snapshot& snap, const FrameView& view,
                           const std::vector<uint32_t>& rows,
                           const std::vector<net::EntityUpdate>& baseline,
                           uint32_t baseline_frame,
                           SharedEncodeScratch& scratch, net::ByteWriter& w);

}  // namespace qserv::sim
