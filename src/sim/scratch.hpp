// Reusable gather scratch for request execution. A move gathers candidate
// entities two ways — the short-range interaction list and the long-range
// attack ray/blast candidates — and both gathers previously allocated a
// fresh vector per move. The server's exec phase owns one MoveScratch per
// worker thread and threads it through execute_move(), so steady-state
// frames reuse the grown capacity instead of re-allocating. Passing
// nullptr (tests, replay, bots) falls back to per-call locals.
#pragma once

#include <cstdint>
#include <vector>

namespace qserv::sim {

struct MoveScratch {
  std::vector<uint32_t> nearby;      // execute_move's interaction gather
  std::vector<uint32_t> candidates;  // hitscan/grenade ray gather
};

}  // namespace qserv::sim
