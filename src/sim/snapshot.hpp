// Reply-phase snapshot construction: interest management ("the server
// determines which entities are of interest to each client and sends out
// information only for those") and serialization into the wire snapshot.
// Read-only with respect to global server state, as §3.3 requires of the
// reply phase.
#pragma once

#include "src/net/protocol.hpp"
#include "src/sim/world.hpp"

namespace qserv::sim {

// An entity is of interest if it is within this range of the client...
inline constexpr float kInterestRange = 800.0f;
// ...and, for players, also line-of-sight visible (or close enough that
// sound would carry).
inline constexpr float kAlwaysAudibleRange = 250.0f;

struct SnapshotStats {
  int interest_checks = 0;
  int los_traces = 0;
  int los_brushes = 0;
  int visible_entities = 0;
};

// Fills `out` (entities + player private state) for `player`. `events` is
// the frame's global event list, broadcast to everyone. Charges reply
// costs to the attached platform.
//
// `thin_far` is the degradation governor's first rung: entities beyond
// half the interest range are refreshed only every other snapshot (by
// (entity id + frame) parity, so each far entity still updates at half
// rate rather than some never appearing). Near entities — the ones the
// client is interacting with — are never thinned.
SnapshotStats build_snapshot(const World& world, const Entity& player,
                             uint32_t server_frame, uint32_t ack_sequence,
                             int64_t client_time_echo_ns,
                             const std::vector<net::GameEvent>& events,
                             net::Snapshot& out, bool thin_far = false);

}  // namespace qserv::sim
