// Reply-phase snapshot construction: interest management ("the server
// determines which entities are of interest to each client and sends out
// information only for those") and serialization into the wire snapshot.
// Read-only with respect to global server state, as §3.3 requires of the
// reply phase.
#pragma once

#include "src/net/protocol.hpp"
#include "src/sim/world.hpp"

namespace qserv::sim {

// An entity is of interest if it is within this range of the client...
inline constexpr float kInterestRange = 800.0f;
// ...and, for players, also line-of-sight visible (or close enough that
// sound would carry).
inline constexpr float kAlwaysAudibleRange = 250.0f;

struct SnapshotStats {
  int interest_checks = 0;
  int los_traces = 0;
  int los_brushes = 0;
  int visible_entities = 0;
};

// Fills `out` (entities + player private state) for `player`. `events` is
// the frame's global event list, broadcast to everyone. Charges reply
// costs to the attached platform.
//
// `thin_far` is the degradation governor's first rung: entities beyond
// half the interest range are refreshed only every other snapshot (by
// (entity id + frame) parity, so each far entity still updates at half
// rate rather than some never appearing). Near entities — the ones the
// client is interacting with — are never thinned.
SnapshotStats build_snapshot(const World& world, const Entity& player,
                             uint32_t server_frame, uint32_t ack_sequence,
                             int64_t client_time_echo_ns,
                             const std::vector<net::GameEvent>& events,
                             net::Snapshot& out, bool thin_far = false);

// Options for the SoA sweep (reply hot path, DESIGN.md §15).
struct ViewSweepArgs {
  bool thin_far = false;
  // Charge per_shared_entity per visible row instead of
  // per_visible_entity: the shared-baseline encoder copies pre-encoded
  // record spans, so the per-viewer serialization cost is gone.
  bool shared_encode = false;
  // Precomputed byte-per-row visibility of the viewer's PVS cluster
  // (ClusterVisCache; charged once per cluster per frame). Null on
  // clusterless viewers (-1, conservative visible-to-all), on maps
  // without PVS (LOS traces run per viewer as in the legacy path), and
  // on the plain-SoA path, which then charges per_pvs_check per lookup
  // exactly like build_snapshot.
  const std::vector<uint8_t>* pvs_row = nullptr;
  // When non-null, the visible rows' view indices are appended — the
  // shared encoder's input for span copies.
  std::vector<uint32_t>* rows_out = nullptr;
};

// build_snapshot over the packed frame view: identical visibility
// semantics and identical `out` contents (entities in id order), with
// the sweep running over contiguous arrays. The view must be built for
// this frame (FrameView::built_for).
SnapshotStats build_snapshot_view(const World& world, const FrameView& view,
                                  const Entity& player, uint32_t server_frame,
                                  uint32_t ack_sequence,
                                  int64_t client_time_echo_ns,
                                  const std::vector<net::GameEvent>& events,
                                  net::Snapshot& out,
                                  const ViewSweepArgs& args);

}  // namespace qserv::sim
