#include "src/sim/items.hpp"

#include <algorithm>

#include "src/util/check.hpp"

namespace qserv::sim {

bool pickup_useful(const Entity& player, const Entity& item) {
  switch (item.item) {
    case spatial::ItemType::kHealth:
      // Regular health only tops up to the spawn level; megahealth
      // overheals to the hard cap (Quake rules).
      return player.health < kSpawnHealth;
    case spatial::ItemType::kMegaHealth:
      return player.health < kMaxHealth;
    case spatial::ItemType::kArmor:
      return player.armor < kMaxArmor;
    case spatial::ItemType::kWeapon:
      return player.weapon != Weapon::kRailgun;
    case spatial::ItemType::kAmmo:
      return true;
  }
  return false;
}

bool try_pickup(World& world, Entity& player, Entity& item, vt::TimePoint now,
                EventSink* events) {
  QSERV_CHECK(item.type == EntityType::kItem);
  if (!item.available || player.health <= 0) return false;
  if (!pickup_useful(player, item)) return false;

  switch (item.item) {
    case spatial::ItemType::kHealth:
      player.health = std::min(kMaxHealth, player.health + kHealthAmount);
      break;
    case spatial::ItemType::kMegaHealth:
      player.health = std::min(kMaxHealth, player.health + kMegaHealthAmount);
      break;
    case spatial::ItemType::kArmor:
      player.armor = std::min(kMaxArmor, player.armor + kArmorAmount);
      break;
    case spatial::ItemType::kWeapon:
      player.weapon = Weapon::kRailgun;
      break;
    case spatial::ItemType::kAmmo:
      player.grenades += kAmmoGrenades;
      break;
  }
  item.available = false;
  item.respawn_at = now + kItemRespawn;
  if (events != nullptr) {
    events->emit(
        make_event(EventKind::kPickup, player.id, item.id, item.origin));
  }
  (void)world;
  return true;
}

}  // namespace qserv::sim
