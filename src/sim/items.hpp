// Item pickup and respawn rules (Quake-style: picked-up items vanish and
// respawn after a fixed delay).
#pragma once

#include "src/sim/world.hpp"

namespace qserv::sim {

// True if the player would benefit from picking up `item` right now.
bool pickup_useful(const Entity& player, const Entity& item);

// Attempts the pickup. On success applies the item effect, marks the item
// for respawn, and emits a kPickup event. Returns true if picked up.
bool try_pickup(World& world, Entity& player, Entity& item, vt::TimePoint now,
                EventSink* events);

}  // namespace qserv::sim
