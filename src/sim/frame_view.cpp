#include "src/sim/frame_view.hpp"

#include <cstring>

#include "src/sim/world.hpp"

namespace qserv::sim {

namespace {

inline void put_u32_le(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

inline void put_f32_le(std::vector<uint8_t>& out, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u32_le(out, bits);
}

}  // namespace

void FrameView::rebuild(const World& world, uint64_t frame) {
  ids.clear();
  x.clear();
  y.clear();
  z.clear();
  yaw.clear();
  cluster.clear();
  type.clear();
  state.clear();
  is_player.clear();
  wire.clear();

  world.for_each_entity([&](const Entity& e) {
    if (e.type == EntityType::kNone) return;
    ids.push_back(e.id);
    x.push_back(e.origin.x);
    y.push_back(e.origin.y);
    z.push_back(e.origin.z);
    yaw.push_back(e.yaw_deg);
    cluster.push_back(e.cluster);
    type.push_back(static_cast<uint8_t>(e.type));
    // Same wire state byte build_snapshot derives per viewer; captured
    // once here — the world is frozen for the whole reply phase.
    uint8_t st = 0;
    switch (e.type) {
      case EntityType::kItem:
        st = e.available ? 1 : 0;
        break;
      case EntityType::kPlayer:
        st = e.health > 0 ? 1 : 0;
        break;
      default:
        break;
    }
    state.push_back(st);
    is_player.push_back(e.is_player() ? 1 : 0);
    // Canonical record, byte-identical to the full-snapshot entity
    // section (net::encode's per-entity layout).
    put_u32_le(wire, e.id);
    wire.push_back(static_cast<uint8_t>(e.type));
    put_f32_le(wire, e.origin.x);
    put_f32_le(wire, e.origin.y);
    put_f32_le(wire, e.origin.z);
    put_f32_le(wire, e.yaw_deg);
    wire.push_back(st);
  });

  epoch = frame;
  empty_stamp_ = false;
  world.charge(world.costs().per_view_entity *
               static_cast<int64_t>(ids.size()));
}

}  // namespace qserv::sim
