// Per-frame SoA entity view (DESIGN.md §15): the world's active entities
// packed into parallel arrays once per frame, so the reply phase's
// interest/thin-range sweep is a branch-light pass over contiguous data
// instead of per-entity virtual gathers, and each entity's canonical
// wire record is encoded exactly once per frame for every viewer to
// reference.
//
// Lifetime rules: the view is frame-transient scratch. It is rebuilt
// single-threaded at the start of each reply phase (the world is frozen
// through the phase, §3.3), stamped with the frame id (`epoch`), and
// read-only from then on. Rows are indices, never pointers — nothing in
// the view may escape the frame, and it is never checkpointed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qserv::sim {

class World;

class FrameView {
 public:
  // Canonical wire record per row: the exact entity bytes a full
  // snapshot carries (id u32 | type u8 | origin 3xf32 | yaw f32 |
  // state u8, little-endian), so per-client encoders copy spans instead
  // of re-serializing fields.
  static constexpr size_t kRecordBytes = 22;

  // Packs every active non-kNone entity, in id order. Charges
  // per_view_entity per row through the world's platform.
  void rebuild(const World& world, uint64_t frame);

  size_t size() const { return ids.size(); }
  bool built_for(uint64_t frame) const { return !empty_stamp_ && epoch == frame; }
  const uint8_t* record(size_t row) const {
    return wire.data() + row * kRecordBytes;
  }

  // SoA rows (parallel arrays, id-ascending).
  std::vector<uint32_t> ids;
  std::vector<float> x, y, z;
  std::vector<float> yaw;
  std::vector<int32_t> cluster;  // PVS cluster, -1 = visible-to-all
  std::vector<uint8_t> type;     // raw EntityType
  std::vector<uint8_t> state;    // wire state byte (item available / alive)
  std::vector<uint8_t> is_player;
  std::vector<uint8_t> wire;  // kRecordBytes per row, canonical encoding

  // Frame id stamped at rebuild; consumers must check built_for() and
  // never hold the view across frames.
  uint64_t epoch = 0;

 private:
  bool empty_stamp_ = true;  // distinguishes "never built" from frame 0
};

}  // namespace qserv::sim
