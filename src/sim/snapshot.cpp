#include "src/sim/snapshot.hpp"

#include "src/sim/combat.hpp"

namespace qserv::sim {

SnapshotStats build_snapshot(const World& world, const Entity& player,
                             uint32_t server_frame, uint32_t ack_sequence,
                             int64_t client_time_echo_ns,
                             const std::vector<net::GameEvent>& events,
                             net::Snapshot& out, bool thin_far) {
  SnapshotStats stats;
  // Field-wise reset instead of `out = net::Snapshot{}`: a snapshot built
  // into a reused buffer keeps its entity/event capacity across frames.
  out.assigned_port = 0;
  out.baseline_frame = 0;
  out.entities.clear();
  out.events.clear();
  out.server_frame = server_frame;
  out.ack_sequence = ack_sequence;
  out.client_time_echo_ns = client_time_echo_ns;
  out.origin = player.origin;
  out.velocity = player.velocity;
  out.health = static_cast<int16_t>(player.health);
  out.armor = static_cast<int16_t>(player.armor);
  out.frags = static_cast<int16_t>(player.frags);

  const Vec3 eye = eye_pos(player);
  const spatial::PvsData& pvs = world.map().pvs;
  const bool use_pvs = !pvs.empty();
  const int my_cluster = use_pvs ? player.cluster : -1;
  world.for_each_entity([&](const Entity& e) {
    if (e.id == player.id || e.type == EntityType::kNone) return;
    ++stats.interest_checks;
    const float d2 = dist_sq(e.origin, player.origin);
    if (d2 > kInterestRange * kInterestRange) return;
    // Governor rung 1: far entities update at half rate under overload,
    // skipping the expensive visibility work below entirely.
    constexpr float kThinRange = kInterestRange * 0.5f;
    if (thin_far && d2 > kThinRange * kThinRange &&
        ((e.id + server_frame) & 1u) != 0) {
      return;
    }

    if (e.is_player() && d2 > kAlwaysAudibleRange * kAlwaysAudibleRange) {
      if (use_pvs) {
        // Quake-style: a precomputed PVS lookup instead of a ray trace.
        // Maps with higher visibility pass more entities and so cost
        // more reply time.
        world.charge(world.costs().per_pvs_check);
        if (!pvs.can_see(my_cluster, e.cluster)) return;
      } else {
        // No PVS on this map: fall back to a line-of-sight trace.
        const auto tr = world.collision().trace_line(eye, eye_pos(e));
        ++stats.los_traces;
        stats.los_brushes += tr.brushes_tested;
        world.charge(world.costs().per_los_trace_brush * tr.brushes_tested);
        if (tr.hit()) return;
      }
    }

    net::EntityUpdate u;
    u.id = e.id;
    u.type = static_cast<uint8_t>(e.type);
    u.origin = e.origin;
    u.yaw_deg = e.yaw_deg;
    switch (e.type) {
      case EntityType::kItem:
        u.state = e.available ? 1 : 0;
        break;
      case EntityType::kPlayer:
        u.state = e.health > 0 ? 1 : 0;
        break;
      default:
        u.state = 0;
        break;
    }
    out.entities.push_back(u);
    ++stats.visible_entities;
  });

  out.events = events;

  world.charge(world.costs().per_interest_check * stats.interest_checks +
               world.costs().per_visible_entity * stats.visible_entities +
               world.costs().per_event *
                   static_cast<int64_t>(events.size()));
  return stats;
}

}  // namespace qserv::sim
