#include "src/sim/snapshot.hpp"

#include "src/sim/combat.hpp"

namespace qserv::sim {

SnapshotStats build_snapshot(const World& world, const Entity& player,
                             uint32_t server_frame, uint32_t ack_sequence,
                             int64_t client_time_echo_ns,
                             const std::vector<net::GameEvent>& events,
                             net::Snapshot& out, bool thin_far) {
  SnapshotStats stats;
  // Field-wise reset instead of `out = net::Snapshot{}`: a snapshot built
  // into a reused buffer keeps its entity/event capacity across frames.
  out.assigned_port = 0;
  out.baseline_frame = 0;
  out.entities.clear();
  out.events.clear();
  out.server_frame = server_frame;
  out.ack_sequence = ack_sequence;
  out.client_time_echo_ns = client_time_echo_ns;
  out.origin = player.origin;
  out.velocity = player.velocity;
  out.health = static_cast<int16_t>(player.health);
  out.armor = static_cast<int16_t>(player.armor);
  out.frags = static_cast<int16_t>(player.frags);

  const Vec3 eye = eye_pos(player);
  const spatial::PvsData& pvs = world.map().pvs;
  const bool use_pvs = !pvs.empty();
  const int my_cluster = use_pvs ? player.cluster : -1;
  world.for_each_entity([&](const Entity& e) {
    if (e.id == player.id || e.type == EntityType::kNone) return;
    ++stats.interest_checks;
    const float d2 = dist_sq(e.origin, player.origin);
    if (d2 > kInterestRange * kInterestRange) return;
    // Governor rung 1: far entities update at half rate under overload,
    // skipping the expensive visibility work below entirely.
    constexpr float kThinRange = kInterestRange * 0.5f;
    if (thin_far && d2 > kThinRange * kThinRange &&
        ((e.id + server_frame) & 1u) != 0) {
      return;
    }

    if (e.is_player() && d2 > kAlwaysAudibleRange * kAlwaysAudibleRange) {
      if (use_pvs) {
        // Quake-style: a precomputed PVS lookup instead of a ray trace.
        // Maps with higher visibility pass more entities and so cost
        // more reply time.
        world.charge(world.costs().per_pvs_check);
        if (!pvs.can_see(my_cluster, e.cluster)) return;
      } else {
        // No PVS on this map: fall back to a line-of-sight trace.
        const auto tr = world.collision().trace_line(eye, eye_pos(e));
        ++stats.los_traces;
        stats.los_brushes += tr.brushes_tested;
        world.charge(world.costs().per_los_trace_brush * tr.brushes_tested);
        if (tr.hit()) return;
      }
    }

    net::EntityUpdate u;
    u.id = e.id;
    u.type = static_cast<uint8_t>(e.type);
    u.origin = e.origin;
    u.yaw_deg = e.yaw_deg;
    switch (e.type) {
      case EntityType::kItem:
        u.state = e.available ? 1 : 0;
        break;
      case EntityType::kPlayer:
        u.state = e.health > 0 ? 1 : 0;
        break;
      default:
        u.state = 0;
        break;
    }
    out.entities.push_back(u);
    ++stats.visible_entities;
  });

  out.events = events;

  world.charge(world.costs().per_interest_check * stats.interest_checks +
               world.costs().per_visible_entity * stats.visible_entities +
               world.costs().per_event *
                   static_cast<int64_t>(events.size()));
  return stats;
}

SnapshotStats build_snapshot_view(const World& world, const FrameView& view,
                                  const Entity& player, uint32_t server_frame,
                                  uint32_t ack_sequence,
                                  int64_t client_time_echo_ns,
                                  const std::vector<net::GameEvent>& events,
                                  net::Snapshot& out,
                                  const ViewSweepArgs& args) {
  SnapshotStats stats;
  out.assigned_port = 0;
  out.baseline_frame = 0;
  out.entities.clear();
  out.events.clear();
  out.server_frame = server_frame;
  out.ack_sequence = ack_sequence;
  out.client_time_echo_ns = client_time_echo_ns;
  out.origin = player.origin;
  out.velocity = player.velocity;
  out.health = static_cast<int16_t>(player.health);
  out.armor = static_cast<int16_t>(player.armor);
  out.frags = static_cast<int16_t>(player.frags);

  const Vec3 eye = eye_pos(player);
  const spatial::PvsData& pvs = world.map().pvs;
  const bool use_pvs = !pvs.empty();
  const int my_cluster = use_pvs ? player.cluster : -1;
  constexpr float kRange2 = kInterestRange * kInterestRange;
  constexpr float kThinRange = kInterestRange * 0.5f;
  constexpr float kThin2 = kThinRange * kThinRange;
  constexpr float kAudible2 = kAlwaysAudibleRange * kAlwaysAudibleRange;
  const float px = player.origin.x, py = player.origin.y, pz = player.origin.z;

  int pvs_lookups = 0;
  const size_t n = view.size();
  for (size_t i = 0; i < n; ++i) {
    if (view.ids[i] == player.id) continue;
    ++stats.interest_checks;
    const float dx = view.x[i] - px;
    const float dy = view.y[i] - py;
    const float dz = view.z[i] - pz;
    const float d2 = dx * dx + dy * dy + dz * dz;
    if (d2 > kRange2) continue;
    if (args.thin_far && d2 > kThin2 &&
        ((view.ids[i] + server_frame) & 1u) != 0) {
      continue;
    }

    if (view.is_player[i] != 0 && d2 > kAudible2) {
      if (use_pvs) {
        if (args.pvs_row != nullptr) {
          // Cluster-shared bitset: the per_pvs_check charges were paid
          // once per cluster when the row was primed.
          if ((*args.pvs_row)[i] == 0) continue;
        } else {
          ++pvs_lookups;
          if (!pvs.can_see(my_cluster, view.cluster[i])) continue;
        }
      } else {
        const auto tr = world.collision().trace_line(
            eye, Vec3{view.x[i], view.y[i], view.z[i] + 22});
        ++stats.los_traces;
        stats.los_brushes += tr.brushes_tested;
        world.charge(world.costs().per_los_trace_brush * tr.brushes_tested);
        if (tr.hit()) continue;
      }
    }

    net::EntityUpdate u;
    u.id = view.ids[i];
    u.type = view.type[i];
    u.origin = Vec3{view.x[i], view.y[i], view.z[i]};
    u.yaw_deg = view.yaw[i];
    u.state = view.state[i];
    out.entities.push_back(u);
    if (args.rows_out != nullptr)
      args.rows_out->push_back(static_cast<uint32_t>(i));
    ++stats.visible_entities;
  }

  out.events = events;

  const vt::Duration per_visible = args.shared_encode
                                       ? world.costs().per_shared_entity
                                       : world.costs().per_visible_entity;
  world.charge(world.costs().per_interest_check_soa * stats.interest_checks +
               world.costs().per_pvs_check * pvs_lookups +
               per_visible * stats.visible_entities +
               world.costs().per_event *
                   static_cast<int64_t>(events.size()));
  return stats;
}

}  // namespace qserv::sim
