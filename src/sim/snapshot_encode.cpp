#include "src/sim/snapshot_encode.hpp"

#include <algorithm>

#include "src/sim/world.hpp"

namespace qserv::sim {

void ClusterVisCache::begin_frame() {
  index_.clear();
  used_ = 0;
}

const std::vector<uint8_t>* ClusterVisCache::prime(const World& world,
                                                   const FrameView& view,
                                                   int cluster) {
  const spatial::PvsData& pvs = world.map().pvs;
  if (cluster < 0 || pvs.empty()) return nullptr;
  const auto it = index_.find(cluster);
  if (it != index_.end()) return &pool_[it->second];

  if (used_ == pool_.size()) pool_.emplace_back();
  std::vector<uint8_t>& row = pool_[used_];
  // Non-player rows are never consulted (only players beyond the audible
  // range go through visibility); mark them visible anyway.
  row.assign(view.size(), 1);
  int64_t player_rows = 0;
  const size_t n = view.size();
  for (size_t i = 0; i < n; ++i) {
    if (view.is_player[i] == 0) continue;
    ++player_rows;
    row[i] = pvs.can_see(cluster, view.cluster[i]) ? 1 : 0;
  }
  // The same per-lookup charge the legacy sweep pays, but once per
  // cluster per frame instead of once per viewer.
  world.charge(world.costs().per_pvs_check * player_rows);
  index_.emplace(cluster, used_);
  return &pool_[used_++];
}

const std::vector<uint8_t>* ClusterVisCache::row_for(int cluster) const {
  const auto it = index_.find(cluster);
  return it != index_.end() ? &pool_[it->second] : nullptr;
}

namespace {

// True if `id` is among the visible rows (rows are id-ascending: the
// sweep walks the view, and the view is built in id order).
bool rows_contain(const FrameView& view, const std::vector<uint32_t>& rows,
                  uint32_t id) {
  size_t lo = 0, hi = rows.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (view.ids[rows[mid]] < id) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo < rows.size() && view.ids[rows[lo]] == id;
}

}  // namespace

void encode_full_from_view(const net::Snapshot& snap, const FrameView& view,
                           const std::vector<uint32_t>& rows,
                           net::ByteWriter& w) {
  w.u8(static_cast<uint8_t>(net::ServerMsgType::kSnapshot));
  w.u32(snap.server_frame);
  w.u32(snap.ack_sequence);
  w.i64(snap.client_time_echo_ns);
  w.u16(snap.assigned_port);
  w.vec3(snap.origin);
  w.vec3(snap.velocity);
  w.u16(static_cast<uint16_t>(snap.health));
  w.u16(static_cast<uint16_t>(snap.armor));
  w.u16(static_cast<uint16_t>(snap.frags));
  w.u16(static_cast<uint16_t>(rows.size()));
  for (const uint32_t row : rows) {
    w.bytes(view.record(row), FrameView::kRecordBytes);
  }
  w.u16(static_cast<uint16_t>(snap.events.size()));
  for (const auto& ev : snap.events) {
    w.u8(ev.kind);
    w.u32(ev.a);
    w.u32(ev.b);
    w.vec3(ev.pos);
  }
}

int encode_delta_from_view(const net::Snapshot& snap, const FrameView& view,
                           const std::vector<uint32_t>& rows,
                           const std::vector<net::EntityUpdate>& baseline,
                           uint32_t baseline_frame,
                           SharedEncodeScratch& scratch, net::ByteWriter& w) {
  // Canonical record field offsets (FrameView wire layout):
  // id u32 @0 | type u8 @4 | origin 3xf32 @5 | yaw f32 @17 | state u8 @21.
  constexpr size_t kOffType = 4;
  constexpr size_t kOffOrigin = 5;
  constexpr size_t kOffYaw = 17;
  constexpr size_t kOffState = 21;

  w.u8(static_cast<uint8_t>(net::ServerMsgType::kDeltaSnapshot));
  w.u32(snap.server_frame);
  w.u32(snap.ack_sequence);
  w.i64(snap.client_time_echo_ns);
  w.u16(snap.assigned_port);
  w.u32(baseline_frame);
  w.vec3(snap.origin);
  w.vec3(snap.velocity);
  w.u16(static_cast<uint16_t>(snap.health));
  w.u16(static_cast<uint16_t>(snap.armor));
  w.u16(static_cast<uint16_t>(snap.frags));

  // Removals in baseline order, exactly as net::encode_delta emits them.
  scratch.removed.clear();
  for (const auto& e : baseline) {
    if (!rows_contain(view, rows, e.id)) scratch.removed.push_back(e.id);
  }
  w.u16(static_cast<uint16_t>(scratch.removed.size()));
  for (const uint32_t id : scratch.removed) w.u32(id);

  // Baseline lookup index. Baselines come out of earlier sweeps in id
  // order, so the sort is a no-op check in practice; kept for arbitrary
  // (e.g. test-constructed) baselines.
  scratch.base_ids.clear();
  for (uint32_t i = 0; i < static_cast<uint32_t>(baseline.size()); ++i) {
    scratch.base_ids.emplace_back(baseline[i].id, i);
  }
  const auto by_id = [](const std::pair<uint32_t, uint32_t>& a,
                        const std::pair<uint32_t, uint32_t>& b) {
    return a.first < b.first;
  };
  if (!std::is_sorted(scratch.base_ids.begin(), scratch.base_ids.end(),
                      by_id)) {
    std::sort(scratch.base_ids.begin(), scratch.base_ids.end(), by_id);
  }

  int encoded = 0;
  scratch.body.clear();
  net::ByteWriter& body = scratch.body;
  for (const uint32_t row : rows) {
    const uint32_t id = view.ids[row];
    const uint8_t* rec = view.record(row);
    uint8_t mask = 0;
    const auto it = std::lower_bound(
        scratch.base_ids.begin(), scratch.base_ids.end(),
        std::make_pair(id, uint32_t{0}), by_id);
    if (it == scratch.base_ids.end() || it->first != id) {
      mask = net::kDeltaAll;
    } else {
      const net::EntityUpdate& b = baseline[it->second];
      if (b.origin != Vec3{view.x[row], view.y[row], view.z[row]})
        mask |= net::kDeltaOrigin;
      if (b.yaw_deg != view.yaw[row]) mask |= net::kDeltaYaw;
      if (b.state != view.state[row]) mask |= net::kDeltaState;
      if (b.type != view.type[row]) mask |= net::kDeltaType;
    }
    if (mask == 0) continue;
    ++encoded;
    body.u32(id);
    body.u8(mask);
    if (mask & net::kDeltaOrigin) body.bytes(rec + kOffOrigin, 12);
    if (mask & net::kDeltaYaw) body.bytes(rec + kOffYaw, 4);
    if (mask & net::kDeltaState) body.u8(rec[kOffState]);
    if (mask & net::kDeltaType) body.u8(rec[kOffType]);
  }
  w.u16(static_cast<uint16_t>(encoded));
  w.bytes(body.data().data(), body.size());

  w.u16(static_cast<uint16_t>(snap.events.size()));
  for (const auto& ev : snap.events) {
    w.u8(ev.kind);
    w.u32(ev.a);
    w.u32(ev.b);
    w.vec3(ev.pos);
  }
  return encoded;
}

}  // namespace qserv::sim
