#include "src/sim/game_rules.hpp"

#include <algorithm>

#include "src/util/check.hpp"

namespace qserv::sim {

bool apply_damage(World& world, Entity& victim, uint32_t attacker_id,
                  int damage, NodeListLocks* locks, EventSink* events) {
  QSERV_CHECK(victim.is_player());
  if (victim.health <= 0 || damage <= 0) return false;

  const int absorbable = (damage * 2) / 3;
  const int absorbed = std::min(victim.armor, absorbable);
  victim.armor -= absorbed;
  victim.health -= damage - absorbed;

  if (victim.health > 0) return false;

  // Death: score the frag and respawn the victim in place.
  ++victim.deaths;
  Entity* attacker = world.get(attacker_id);
  if (attacker != nullptr && attacker->is_player() &&
      attacker_id != victim.id) {
    ++attacker->frags;
  } else {
    --victim.frags;  // environment/self kill
  }
  if (events != nullptr) {
    events->emit(
        make_event(EventKind::kFrag, attacker_id, victim.id, victim.origin));
  }
  world.respawn_player(victim, locks, events);
  return true;
}

std::vector<ScoreEntry> scoreboard(const World& world) {
  std::vector<ScoreEntry> out;
  world.for_each_entity([&](const Entity& e) {
    if (e.is_player()) out.push_back({e.id, e.name, e.frags, e.deaths});
  });
  std::sort(out.begin(), out.end(), [](const ScoreEntry& a, const ScoreEntry& b) {
    return a.frags != b.frags ? a.frags > b.frags : a.id < b.id;
  });
  return out;
}

}  // namespace qserv::sim
