// Game entities, Quake-edict style: one struct for all entity kinds with
// type-specific fields. Entities are identified by dense ids assigned by
// the World; the id namespace is shared with the wire protocol.
#pragma once

#include <cstdint>
#include <string>

#include "src/spatial/map.hpp"
#include "src/util/aabb.hpp"
#include "src/util/vec.hpp"
#include "src/vthread/time.hpp"

namespace qserv::sim {

enum class EntityType : uint8_t {
  kNone = 0,
  kPlayer = 1,
  kItem = 2,
  kProjectile = 3,
  kTeleporter = 4,
};

enum class Weapon : uint8_t { kBlaster = 0, kRailgun = 1 };

// Player movement constants (Quake values).
inline constexpr Vec3 kPlayerMins{-16.0f, -16.0f, -24.0f};
inline constexpr Vec3 kPlayerMaxs{16.0f, 16.0f, 32.0f};
inline constexpr float kMaxPlayerSpeed = 320.0f;   // units/s
inline constexpr float kPlayerAccel = 10.0f;       // 1/s toward wish velocity
inline constexpr float kGroundFriction = 6.0f;     // 1/s
inline constexpr float kGravity = 800.0f;          // units/s^2
inline constexpr float kJumpVelocity = 270.0f;

// Combat constants.
inline constexpr int kSpawnHealth = 100;
inline constexpr int kMegaHealthAmount = 100;
inline constexpr int kHealthAmount = 25;
inline constexpr int kArmorAmount = 50;
inline constexpr int kMaxHealth = 200;
inline constexpr int kMaxArmor = 100;
inline constexpr int kBlasterDamage = 15;
inline constexpr int kRailgunDamage = 30;
inline constexpr int kGrenadeDamage = 40;
inline constexpr float kHitscanRange = 2000.0f;
inline constexpr float kGrenadeSpeed = 600.0f;
inline constexpr vt::Duration kGrenadeLifetime = vt::millis(1500);
// How far a grenade is simulated during request processing before being
// handed to the world-physics phase ("type 1" objects in §4.3 — their
// expanded lock region must cover this distance).
inline constexpr float kGrenadeRequestRange = 256.0f;
inline constexpr vt::Duration kItemRespawn = vt::seconds(20);
// Quake-like fire rate: long-range interactions are frequent, which is
// what drives the paper's region-lock contention ("the observed level of
// interaction among players is very high").
inline constexpr vt::Duration kAttackCooldown = vt::millis(100);
inline constexpr int kStartGrenades = 5;
inline constexpr int kAmmoGrenades = 10;

struct Entity {
  uint32_t id = 0;
  EntityType type = EntityType::kNone;
  bool active = false;

  Vec3 origin;
  Vec3 velocity;
  float yaw_deg = 0.0f;
  Vec3 mins;  // local bounds
  Vec3 maxs;
  bool solid = false;     // blocks player motion
  bool on_ground = false;

  int areanode = -1;  // tree node this entity is linked to (-1 = unlinked)
  int cluster = -1;   // PVS cluster at the current origin (-1 = none)

  // --- player fields ---
  std::string name;
  int health = 0;
  int armor = 0;
  int frags = 0;
  int grenades = 0;
  Weapon weapon = Weapon::kBlaster;
  vt::TimePoint next_attack{};
  uint32_t deaths = 0;

  // --- item fields ---
  spatial::ItemType item = spatial::ItemType::kHealth;
  bool available = true;          // picked-up items respawn later
  vt::TimePoint respawn_at{};

  // --- projectile fields ---
  uint32_t owner = 0;
  Vec3 dir;
  vt::TimePoint expire_at{};

  // --- teleporter fields ---
  Vec3 teleport_dest;

  Aabb bounds() const { return Aabb::at(origin, mins, maxs); }
  bool is_player() const { return type == EntityType::kPlayer; }
  bool alive() const { return is_player() && health > 0; }
};

const char* entity_type_name(EntityType t);
const char* weapon_name(Weapon w);

// Game event kinds carried in the global state buffer / snapshots.
enum class EventKind : uint8_t {
  kFrag = 1,       // a = attacker id, b = victim id
  kPickup = 2,     // a = player id, b = item entity id
  kTeleport = 3,   // a = player id
  kExplosion = 4,  // a = projectile owner id
  kSpawn = 5,      // a = player id
};

}  // namespace qserv::sim
