// The game world: entity storage, areanode linkage, and the world-physics
// phase. This is the shared mutable state the paper's locking protocols
// protect.
//
// Concurrency contract (matching the parallel server design):
//  * entity state is mutated during request processing only under the
//    region locks covering the entity's location;
//  * areanode object lists are mutated/scanned under per-node list locks
//    (the paper's "parent areanode" locks), passed in as a NodeListLocks;
//    a null NodeListLocks means the caller is single-threaded (sequential
//    server, world phase, setup);
//  * entity *creation/destruction* happens only in single-threaded phases;
//    request processing defers projectile spawns through the thread-safe
//    queue_projectile(), and the world phase materializes them — exactly
//    the paper's "type 1" objects whose simulation completes during world
//    physics.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/net/protocol.hpp"
#include "src/sim/cost_model.hpp"
#include "src/sim/entity.hpp"
#include "src/sim/frame_view.hpp"
#include "src/spatial/areanode_tree.hpp"
#include "src/spatial/collision.hpp"
#include "src/spatial/map.hpp"
#include "src/util/rng.hpp"
#include "src/vthread/platform.hpp"

namespace qserv::sim {

// Per-node object-list locks, implemented by core/lock_manager in the
// parallel server. lock/unlock pairs must be short (list access only).
class NodeListLocks {
 public:
  virtual ~NodeListLocks() = default;
  virtual void lock_list(int node_index) = 0;
  virtual void unlock_list(int node_index) = 0;
};

// Sink for global game events (the global state buffer in the server).
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void emit(const net::GameEvent& e) = 0;
};

net::GameEvent make_event(EventKind kind, uint32_t a, uint32_t b,
                          const Vec3& pos);

struct GatherStats {
  int nodes_visited = 0;
  int entities_scanned = 0;
};

class World {
 public:
  struct Config {
    int areanode_depth = 4;  // 31 nodes / 16 leaves, the paper's default
    uint64_t seed = 1;
  };

  // `platform` may be null (pure-logic tests): no compute is charged and
  // internal mutexes are omitted.
  World(const spatial::GameMap& map, Config cfg,
        vt::Platform* platform = nullptr, CostModel costs = CostModel{});

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  // Pre-sizes entity storage so spawns never touch the entity vector
  // itself — neither its data pointer nor its size — once concurrent
  // readers exist. New slots go on the free list; a vector whose size
  // still changed under a connect raced with get() on other threads.
  void reserve_entities(size_t n);

  // --- entity management (single-threaded phases only) ---
  Entity& spawn_entity(EntityType type);
  void remove_entity(uint32_t id, NodeListLocks* locks = nullptr);
  Entity* get(uint32_t id);
  const Entity* get(uint32_t id) const;
  size_t active_entities() const { return active_count_; }

  // Iterates active entities in id order.
  void for_each_entity(const std::function<void(Entity&)>& fn);
  void for_each_entity(const std::function<void(const Entity&)>& fn) const;

  // --- areanode linkage ---
  void link(Entity& e, NodeListLocks* locks = nullptr);
  void unlink(Entity& e, NodeListLocks* locks = nullptr);
  void relink(Entity& e, NodeListLocks* locks = nullptr);

  // Appends ids of active entities whose bounds intersect `box`. Scans
  // node object lists under `locks` (if provided) and charges traversal
  // costs.
  void gather(const Aabb& box, std::vector<uint32_t>& out,
              NodeListLocks* locks = nullptr,
              GatherStats* stats = nullptr) const;

  // --- players ---
  Entity& spawn_player(const std::string& name,
                       NodeListLocks* locks = nullptr);
  // Moves a (dead) player to a fresh spawn point, restores stats, relinks.
  // Spawn placement is drawn from a stateless RNG keyed on
  // (seed, player id, death count) — not the shared world RNG — so
  // respawns reached concurrently from request processing neither race on
  // RNG state nor depend on cross-thread ordering. Deterministic replay
  // depends on this.
  void respawn_player(Entity& player, NodeListLocks* locks,
                      EventSink* events);
  // A spawn point drawn from `rng`; if `check_blocked`, tries a few times
  // to find one clear of players (gathers — single-threaded phases only).
  spatial::SpawnPoint pick_spawn_point(Rng& rng, bool check_blocked = true);

  // --- projectiles ---
  struct ProjectileSpec {
    uint32_t owner = 0;
    Vec3 origin;
    Vec3 dir;  // unit
    vt::TimePoint expire_at{};
    // Serialization index of the move that threw it. The world phase
    // materializes specs in this order (not queue-arrival order, which is
    // scheduling-dependent), so entity-id assignment replays exactly.
    uint64_t order = 0;
  };
  // Thread-safe; callable from request processing.
  void queue_projectile(const ProjectileSpec& spec);
  size_t pending_projectiles() const;

  // --- world physics phase (single-threaded) ---
  void world_phase(vt::TimePoint now, vt::Duration dt, EventSink& events);

  // --- per-frame SoA view (reply hot path, DESIGN.md §15) ---
  // Repacks active entities into the frame view. Single-threaded (called
  // at the flip into the reply phase, while the world is frozen); the
  // view is transient scratch and never checkpointed.
  void rebuild_frame_view(uint64_t frame) { frame_view_.rebuild(*this, frame); }
  const FrameView& frame_view() const { return frame_view_; }

  // --- accessors ---
  const spatial::GameMap& map() const { return map_; }
  const spatial::CollisionWorld& collision() const { return collision_; }
  const spatial::AreanodeTree& tree() const { return tree_; }
  spatial::AreanodeTree& tree() { return tree_; }
  const CostModel& costs() const { return costs_; }
  Rng& rng() { return rng_; }
  const Rng& rng() const { return rng_; }
  uint64_t seed() const { return seed_; }
  // Raw storage views for checkpointing: every slot (active or not) and
  // the free-id stack whose order determines future id assignment.
  size_t entity_storage_size() const { return entities_.size(); }
  const std::vector<uint32_t>& free_ids() const { return free_ids_; }

  // --- checkpoint restore (single-threaded, before any traffic) ---
  // Clears all entities, areanode lists and the free stack.
  void begin_restore();
  // Places a checkpointed entity at its recorded id (storage must have
  // been pre-sized past it); does NOT link — links are restored per node
  // via restore_link so list order round-trips exactly.
  void restore_entity(const Entity& e);
  // Appends `id` to `node`'s object list and records the link.
  void restore_link(uint32_t id, int node);
  // Installs the recorded free-id stack (checkpointed bottom-to-top).
  void finish_restore(std::vector<uint32_t> free_ids);
  // Shifts every absolute-time entity field (attack cooldowns, item
  // respawns, projectile expiry) by `delta` — warm restart maps
  // checkpoint-time T onto restart-time now.
  void rebase_times(vt::Duration delta);

  // Charges virtual CPU time if a platform is attached.
  void charge(vt::Duration d) const {
    if (platform_ != nullptr && d.ns > 0) platform_->compute(d);
  }
  // Swaps the attached platform (null = detach cost charging). Restore
  // and journal-tail replay re-execute work whose cost already happened
  // in the original timeline — re-charging would double-count, and the
  // caller (a shard supervisor's timer) may be outside any schedulable
  // fiber. Returns the previous platform so a guard can reattach it.
  vt::Platform* exchange_platform(vt::Platform* p) {
    vt::Platform* old = platform_;
    platform_ = p;
    return old;
  }
  vt::TimePoint now_or_zero() const {
    return platform_ != nullptr ? platform_->now() : vt::TimePoint{};
  }

 private:
  spatial::GameMap map_;
  spatial::CollisionWorld collision_;
  spatial::AreanodeTree tree_;
  vt::Platform* platform_;
  CostModel costs_;
  uint64_t seed_;
  Rng rng_;

  std::vector<Entity> entities_;
  std::vector<uint32_t> free_ids_;
  size_t active_count_ = 0;
  FrameView frame_view_;

  std::unique_ptr<vt::Mutex> projectile_mu_;  // null without a platform
  std::vector<ProjectileSpec> pending_projectiles_;
};

}  // namespace qserv::sim
