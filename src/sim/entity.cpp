#include "src/sim/entity.hpp"

namespace qserv::sim {

const char* entity_type_name(EntityType t) {
  switch (t) {
    case EntityType::kNone: return "none";
    case EntityType::kPlayer: return "player";
    case EntityType::kItem: return "item";
    case EntityType::kProjectile: return "projectile";
    case EntityType::kTeleporter: return "teleporter";
  }
  return "?";
}

const char* weapon_name(Weapon w) {
  switch (w) {
    case Weapon::kBlaster: return "blaster";
    case Weapon::kRailgun: return "railgun";
  }
  return "?";
}

}  // namespace qserv::sim
