#include "src/sim/combat.hpp"

#include <algorithm>

#include "src/sim/game_rules.hpp"
#include "src/util/check.hpp"

namespace qserv::sim {

Vec3 aim_dir(const Entity& player, float pitch_deg) {
  return ViewAngles{player.yaw_deg, pitch_deg}.forward();
}

Vec3 eye_pos(const Entity& player) {
  return player.origin + Vec3{0, 0, 22};
}

void explode_at(World& world, uint32_t owner, const Vec3& pos,
                NodeListLocks* locks, EventSink* events) {
  constexpr float kRadius = 100.0f;
  std::vector<uint32_t> nearby;
  world.gather(Aabb{pos, pos}.expanded(kRadius), nearby, locks);
  for (const uint32_t id : nearby) {
    Entity* v = world.get(id);
    if (v == nullptr || !v->is_player() || v->health <= 0) continue;
    const float d = dist(v->origin, pos);
    if (d > kRadius) continue;
    const int dmg = static_cast<int>(
        static_cast<float>(kGrenadeDamage) * (1.0f - 0.5f * d / kRadius));
    apply_damage(world, *v, owner, dmg, locks, events);
  }
  if (events != nullptr)
    events->emit(make_event(EventKind::kExplosion, owner, 0, pos));
}

namespace {

// Nearest player (other than the shooter) hit by the ray, within
// `max_fraction` of it. Returns nullptr on a miss.
Entity* nearest_player_on_ray(World& world, const Entity& shooter,
                              const Vec3& start, const Vec3& delta,
                              float max_fraction, NodeListLocks* locks,
                              AttackResult& res, MoveScratch* scratch) {
  // The ray's axis-aligned bounds, padded by the player box extents so
  // boxes merely clipped by the ray are gathered too.
  const Aabb ray_bounds =
      Aabb{start, start}.swept(delta * max_fraction).expanded(20.0f);
  std::vector<uint32_t> local_candidates;
  std::vector<uint32_t>& candidates =
      scratch != nullptr ? scratch->candidates : local_candidates;
  candidates.clear();
  GatherStats gs;
  world.gather(ray_bounds, candidates, locks, &gs);
  res.entities_scanned += gs.entities_scanned;

  Entity* best = nullptr;
  float best_fraction = max_fraction;
  for (const uint32_t id : candidates) {
    Entity* e = world.get(id);
    if (e == nullptr || !e->is_player() || e->id == shooter.id ||
        e->health <= 0)
      continue;
    const float f = spatial::ray_vs_aabb(start, delta, e->bounds());
    if (f >= 0.0f && f < best_fraction) {
      best_fraction = f;
      best = e;
    }
  }
  return best;
}

}  // namespace

AttackResult fire_hitscan(World& world, Entity& shooter, float pitch_deg,
                          vt::TimePoint now, NodeListLocks* locks,
                          EventSink* events, MoveScratch* scratch) {
  AttackResult res;
  if (now < shooter.next_attack || shooter.health <= 0) return res;
  shooter.next_attack = now + kAttackCooldown;
  res.fired = true;
  world.charge(world.costs().hitscan_exec);

  const Vec3 start = eye_pos(shooter);
  const Vec3 dir = aim_dir(shooter, pitch_deg);
  const Vec3 delta = dir * kHitscanRange;

  // How far the world geometry lets the shot travel.
  const auto tr = world.collision().trace_line(start, start + delta);
  res.brushes_tested += tr.brushes_tested;
  world.charge(world.costs().per_brush_trace * tr.brushes_tested);

  Entity* victim = nearest_player_on_ray(world, shooter, start, delta,
                                         tr.fraction, locks, res, scratch);
  if (victim != nullptr) {
    res.hit_player = true;
    res.victim = victim->id;
    const int dmg =
        shooter.weapon == Weapon::kRailgun ? kRailgunDamage : kBlasterDamage;
    apply_damage(world, *victim, shooter.id, dmg, locks, events);
  }
  return res;
}

AttackResult throw_grenade(World& world, Entity& shooter, float pitch_deg,
                           vt::TimePoint now, NodeListLocks* locks,
                           EventSink* events, uint64_t order,
                           MoveScratch* scratch) {
  AttackResult res;
  if (now < shooter.next_attack || shooter.health <= 0 ||
      shooter.grenades <= 0)
    return res;
  shooter.next_attack = now + kAttackCooldown;
  --shooter.grenades;
  res.fired = true;
  world.charge(world.costs().grenade_exec);

  const Vec3 start = eye_pos(shooter);
  const Vec3 dir = aim_dir(shooter, pitch_deg);
  const Vec3 delta = dir * kGrenadeRequestRange;

  // First segment is simulated now, inside the (expanded) locked region.
  const auto tr = world.collision().trace_box(start, start + delta,
                                              {-4, -4, -4}, {4, 4, 4});
  res.brushes_tested += tr.brushes_tested;
  world.charge(world.costs().per_brush_trace * tr.brushes_tested);

  Entity* victim = nearest_player_on_ray(world, shooter, start, delta,
                                         tr.fraction, locks, res, scratch);
  if (victim != nullptr) {
    // Direct hit within the request-time segment: full damage, detonate.
    res.hit_player = true;
    res.victim = victim->id;
    explode_at(world, shooter.id, victim->origin, locks, events);
    return res;
  }
  if (tr.hit()) {
    // Struck geometry within the segment: detonate at the impact point.
    explode_at(world, shooter.id, tr.endpos, locks, events);
    return res;
  }
  // Flight continues in the world-physics phase (type-1 object).
  world.queue_projectile(
      {shooter.id, tr.endpos, dir, now + kGrenadeLifetime, order});
  return res;
}

}  // namespace qserv::sim
