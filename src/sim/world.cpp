#include "src/sim/world.hpp"

#include <algorithm>

#include "src/sim/combat.hpp"
#include "src/util/check.hpp"

namespace qserv::sim {

net::GameEvent make_event(EventKind kind, uint32_t a, uint32_t b,
                          const Vec3& pos) {
  net::GameEvent e;
  e.kind = static_cast<uint8_t>(kind);
  e.a = a;
  e.b = b;
  e.pos = pos;
  return e;
}

World::World(const spatial::GameMap& map, Config cfg, vt::Platform* platform,
             CostModel costs)
    : map_(map),
      collision_(map.brushes),
      tree_(map.bounds, cfg.areanode_depth),
      platform_(platform),
      costs_(costs),
      seed_(cfg.seed),
      rng_(derive_seed(cfg.seed, streams::kWorld)) {
  if (platform_ != nullptr) projectile_mu_ = platform_->make_mutex("projq");

  // Materialize static entities from the map: items and teleporter pads.
  for (const auto& it : map_.items) {
    Entity& e = spawn_entity(EntityType::kItem);
    e.origin = it.origin;
    e.mins = {-12, -12, -8};
    e.maxs = {12, 12, 24};
    e.item = it.type;
    e.available = true;
    link(e);
  }
  for (const auto& t : map_.teleporters) {
    Entity& e = spawn_entity(EntityType::kTeleporter);
    e.origin = t.origin;
    e.mins = {-24, -24, -24};
    e.maxs = {24, 24, 8};
    e.teleport_dest = t.destination;
    link(e);
  }
}

void World::reserve_entities(size_t n) {
  if (n <= entities_.size()) return;
  const uint32_t first = static_cast<uint32_t>(entities_.size());
  entities_.resize(n);
  // Fresh ids go on the free stack in descending order so they are
  // handed out lowest-first, matching the old grow-on-demand order.
  free_ids_.reserve(free_ids_.size() + (n - first));
  for (uint32_t id = static_cast<uint32_t>(n); id-- > first;)
    free_ids_.push_back(id);
}

Entity& World::spawn_entity(EntityType type) {
  uint32_t id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
  } else {
    // Pool exhausted (or a standalone World that never pre-sized):
    // grow. Only safe while no other thread is reading the vector.
    id = static_cast<uint32_t>(entities_.size());
    entities_.emplace_back();
  }
  Entity& e = entities_[id];
  e = Entity{};
  e.id = id;
  e.type = type;
  e.active = true;
  ++active_count_;
  return e;
}

void World::remove_entity(uint32_t id, NodeListLocks* locks) {
  Entity* e = get(id);
  QSERV_CHECK_MSG(e != nullptr, "removing missing entity");
  if (e->areanode >= 0) unlink(*e, locks);
  e->active = false;
  e->type = EntityType::kNone;
  free_ids_.push_back(id);
  --active_count_;
}

Entity* World::get(uint32_t id) {
  if (id >= entities_.size() || !entities_[id].active) return nullptr;
  return &entities_[id];
}

const Entity* World::get(uint32_t id) const {
  if (id >= entities_.size() || !entities_[id].active) return nullptr;
  return &entities_[id];
}

void World::for_each_entity(const std::function<void(Entity&)>& fn) {
  for (auto& e : entities_) {
    if (e.active) fn(e);
  }
}

void World::for_each_entity(
    const std::function<void(const Entity&)>& fn) const {
  for (const auto& e : entities_) {
    if (e.active) fn(e);
  }
}

void World::link(Entity& e, NodeListLocks* locks) {
  QSERV_CHECK_MSG(e.areanode < 0, "linking an already-linked entity");
  const int node = tree_.link_node_for(e.bounds());
  if (locks != nullptr) locks->lock_list(node);
  tree_.link(e.id, e.bounds());
  if (locks != nullptr) locks->unlock_list(node);
  e.areanode = node;
  // Track the PVS cluster alongside the areanode link (reply-phase
  // interest checks read it instead of ray tracing).
  if (!map_.pvs.empty()) e.cluster = map_.pvs.cluster_of(e.origin);
}

void World::unlink(Entity& e, NodeListLocks* locks) {
  QSERV_CHECK_MSG(e.areanode >= 0, "unlinking an unlinked entity");
  if (locks != nullptr) locks->lock_list(e.areanode);
  tree_.unlink(e.id, e.areanode);
  if (locks != nullptr) locks->unlock_list(e.areanode);
  e.areanode = -1;
}

void World::relink(Entity& e, NodeListLocks* locks) {
  if (e.areanode >= 0) unlink(e, locks);
  link(e, locks);
}

void World::gather(const Aabb& box, std::vector<uint32_t>& out,
                   NodeListLocks* locks, GatherStats* stats) const {
  GatherStats local;
  tree_.traverse(box, [&](int node_index) {
    ++local.nodes_visited;
    if (locks != nullptr) locks->lock_list(node_index);
    const auto& objects = tree_.node(node_index).objects;
    int scanned = 0;
    for (const uint32_t id : objects) {
      ++scanned;
      const Entity& e = entities_[id];
      if (e.active && e.bounds().intersects(box)) out.push_back(id);
    }
    // Scan cost is charged while the list lock is held: this is exactly
    // the paper's parent-areanode lock hold time.
    charge(costs_.per_node_visit + costs_.per_entity_scan * scanned);
    if (locks != nullptr) locks->unlock_list(node_index);
    local.entities_scanned += scanned;
  });
  if (stats != nullptr) {
    stats->nodes_visited += local.nodes_visited;
    stats->entities_scanned += local.entities_scanned;
  }
  // Canonical candidate order. Node lists are in link/unlink history
  // order, which is not part of world state: a restored world (or a
  // differently interleaved parallel run) would hand order-sensitive
  // consumers — item-touch sequence, first-teleporter-wins — a different
  // iteration order over the same state. Sorting by id makes every
  // gather a pure function of entity state, which deterministic replay
  // depends on (DESIGN.md §9).
  std::sort(out.begin(), out.end());
}

spatial::SpawnPoint World::pick_spawn_point(Rng& rng, bool check_blocked) {
  QSERV_CHECK_MSG(!map_.spawns.empty(), "map has no spawn points");
  // Try a few random spawn points and take the first not blocked by a
  // player; fall back to a random one (telefrag-free: we allow overlap).
  if (check_blocked) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      const auto& sp =
          map_.spawns[rng.below(static_cast<uint64_t>(map_.spawns.size()))];
      std::vector<uint32_t> nearby;
      gather(Aabb::at(sp.origin, kPlayerMins, kPlayerMaxs), nearby);
      bool blocked = false;
      for (const uint32_t id : nearby) blocked |= entities_[id].is_player();
      if (!blocked) return sp;
    }
  }
  return map_.spawns[rng.below(static_cast<uint64_t>(map_.spawns.size()))];
}

Entity& World::spawn_player(const std::string& name, NodeListLocks* locks) {
  Entity& e = spawn_entity(EntityType::kPlayer);
  const auto sp = pick_spawn_point(rng_);
  e.name = name;
  e.origin = sp.origin;
  e.yaw_deg = sp.yaw_deg;
  e.mins = kPlayerMins;
  e.maxs = kPlayerMaxs;
  e.solid = true;
  e.health = kSpawnHealth;
  e.armor = 0;
  e.grenades = kStartGrenades;
  e.weapon = Weapon::kBlaster;
  link(e, locks);
  return e;
}

void World::respawn_player(Entity& player, NodeListLocks* locks,
                           EventSink* events) {
  // Stateless placement keyed on (seed, id, deaths): respawn runs inside
  // request processing under region locks, where drawing the shared world
  // RNG would make results depend on cross-thread execution order (and
  // the blocked-spawn gather would scan lists outside this move's locked
  // region). Placement is blind — overlap is allowed, as in the fallback.
  Rng r(derive_seed(derive_seed(seed_, streams::kRespawn),
                    (static_cast<uint64_t>(player.id) << 32) |
                        static_cast<uint32_t>(player.deaths)));
  const auto sp = pick_spawn_point(r, /*check_blocked=*/false);
  player.origin = sp.origin;
  player.yaw_deg = sp.yaw_deg;
  player.velocity = Vec3{};
  player.health = kSpawnHealth;
  player.armor = 0;
  player.grenades = kStartGrenades;
  player.weapon = Weapon::kBlaster;
  player.on_ground = false;
  relink(player, locks);
  if (events != nullptr)
    events->emit(make_event(EventKind::kSpawn, player.id, 0, player.origin));
}

void World::queue_projectile(const ProjectileSpec& spec) {
  if (projectile_mu_ != nullptr) {
    vt::LockGuard g(*projectile_mu_);
    pending_projectiles_.push_back(spec);
  } else {
    pending_projectiles_.push_back(spec);
  }
}

size_t World::pending_projectiles() const { return pending_projectiles_.size(); }

void World::world_phase(vt::TimePoint now, vt::Duration dt,
                        EventSink& events) {
  charge(costs_.world_base);

  // Materialize projectiles thrown during the previous request phase.
  std::vector<ProjectileSpec> specs;
  if (projectile_mu_ != nullptr) {
    vt::LockGuard g(*projectile_mu_);
    specs.swap(pending_projectiles_);
  } else {
    specs.swap(pending_projectiles_);
  }
  // Queue arrival order is scheduling-dependent in the parallel server;
  // the throwing move's serialization index is not. Materializing in
  // index order keeps entity-id assignment replayable (stable: specs
  // without an index keep arrival order).
  std::stable_sort(specs.begin(), specs.end(),
                   [](const ProjectileSpec& a, const ProjectileSpec& b) {
                     return a.order < b.order;
                   });
  for (const auto& spec : specs) {
    Entity& e = spawn_entity(EntityType::kProjectile);
    e.origin = spec.origin;
    e.dir = spec.dir;
    e.velocity = spec.dir * kGrenadeSpeed;
    e.mins = {-4, -4, -4};
    e.maxs = {4, 4, 4};
    e.owner = spec.owner;
    e.expire_at = spec.expire_at;
    link(e);
  }

  // Step live projectiles; collect ids first since explosion mutates
  // storage.
  std::vector<uint32_t> projectiles;
  for (const auto& e : entities_) {
    if (e.active && e.type == EntityType::kProjectile) projectiles.push_back(e.id);
  }
  int steps = 0;
  for (const uint32_t id : projectiles) {
    Entity& e = entities_[id];
    ++steps;
    const Vec3 target = e.origin + e.velocity * static_cast<float>(dt.seconds());
    const auto tr = collision_.trace_box(e.origin, target, e.mins, e.maxs);
    charge(costs_.per_brush_trace * tr.brushes_tested);
    e.origin = tr.endpos;
    // Direct hits on players.
    std::vector<uint32_t> hits;
    gather(e.bounds().expanded(8.0f), hits);
    bool direct = false;
    for (const uint32_t hid : hits) {
      if (entities_[hid].is_player() && entities_[hid].health > 0 &&
          hid != e.owner) {
        direct = true;
        break;
      }
    }
    if (tr.hit() || direct || now >= e.expire_at) {
      explode_at(*this, e.owner, e.origin, nullptr, &events);
      remove_entity(id);
    } else {
      relink(e);
    }
  }
  charge(costs_.per_projectile_step * steps);

  // Item respawns.
  int item_checks = 0;
  for (auto& e : entities_) {
    if (!e.active || e.type != EntityType::kItem) continue;
    ++item_checks;
    if (!e.available && now >= e.respawn_at) e.available = true;
  }
  charge(costs_.per_item_check * item_checks);
}

void World::begin_restore() {
  for (auto& e : entities_) e = Entity{};
  free_ids_.clear();
  active_count_ = 0;
  tree_.clear_all_objects();
  pending_projectiles_.clear();
}

void World::restore_entity(const Entity& e) {
  QSERV_CHECK_MSG(e.id < entities_.size(),
                  "restored entity id beyond pre-sized storage");
  Entity& slot = entities_[e.id];
  QSERV_CHECK_MSG(!slot.active, "duplicate entity id in checkpoint");
  slot = e;
  slot.areanode = -1;  // links are restored separately, per node
  ++active_count_;
}

void World::restore_link(uint32_t id, int node) {
  Entity* e = get(id);
  QSERV_CHECK_MSG(e != nullptr, "checkpoint links a missing entity");
  QSERV_CHECK_MSG(e->areanode < 0, "checkpoint links an entity twice");
  tree_.restore_object(node, id);
  e->areanode = node;
}

void World::finish_restore(std::vector<uint32_t> free_ids) {
  free_ids_ = std::move(free_ids);
}

void World::rebase_times(vt::Duration delta) {
  for (auto& e : entities_) {
    if (!e.active) continue;
    if (e.next_attack.ns != 0) e.next_attack = e.next_attack + delta;
    if (e.respawn_at.ns != 0) e.respawn_at = e.respawn_at + delta;
    if (e.expire_at.ns != 0) e.expire_at = e.expire_at + delta;
  }
}

}  // namespace qserv::sim
