#include "src/sim/cost_model.hpp"

namespace qserv::sim {

CostModel CostModel::scaled(double f) const {
  CostModel out = *this;
  auto s = [f](vt::Duration& d) { d = d * f; };
  s(out.recv_parse);
  s(out.move_base);
  s(out.hitscan_exec);
  s(out.grenade_exec);
  s(out.per_brush_trace);
  s(out.per_entity_scan);
  s(out.per_node_visit);
  s(out.per_touch);
  s(out.lock_op);
  s(out.list_lock_op);
  s(out.world_base);
  s(out.per_projectile_step);
  s(out.per_item_check);
  s(out.per_buffer_update);
  s(out.reply_base);
  s(out.per_interest_check);
  s(out.per_pvs_check);
  s(out.per_los_trace_brush);
  s(out.per_visible_entity);
  s(out.per_event);
  s(out.send_syscall);
  s(out.per_view_entity);
  s(out.per_interest_check_soa);
  s(out.per_shared_entity);
  s(out.per_buffer_ref);
  s(out.select_syscall);
  s(out.signal_syscall);
  return out;
}

}  // namespace qserv::sim
