file(REMOVE_RECURSE
  "libqserv.a"
)
