# Empty dependencies file for qserv.
# This may be replaced when dependencies are built.
