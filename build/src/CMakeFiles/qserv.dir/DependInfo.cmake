
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bots/bot.cpp" "src/CMakeFiles/qserv.dir/bots/bot.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/bots/bot.cpp.o.d"
  "/root/repo/src/bots/client.cpp" "src/CMakeFiles/qserv.dir/bots/client.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/bots/client.cpp.o.d"
  "/root/repo/src/bots/client_driver.cpp" "src/CMakeFiles/qserv.dir/bots/client_driver.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/bots/client_driver.cpp.o.d"
  "/root/repo/src/core/frame_stats.cpp" "src/CMakeFiles/qserv.dir/core/frame_stats.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/core/frame_stats.cpp.o.d"
  "/root/repo/src/core/lock_manager.cpp" "src/CMakeFiles/qserv.dir/core/lock_manager.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/core/lock_manager.cpp.o.d"
  "/root/repo/src/core/parallel_server.cpp" "src/CMakeFiles/qserv.dir/core/parallel_server.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/core/parallel_server.cpp.o.d"
  "/root/repo/src/core/sequential_server.cpp" "src/CMakeFiles/qserv.dir/core/sequential_server.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/core/sequential_server.cpp.o.d"
  "/root/repo/src/core/server.cpp" "src/CMakeFiles/qserv.dir/core/server.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/core/server.cpp.o.d"
  "/root/repo/src/harness/experiment.cpp" "src/CMakeFiles/qserv.dir/harness/experiment.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/harness/experiment.cpp.o.d"
  "/root/repo/src/harness/report.cpp" "src/CMakeFiles/qserv.dir/harness/report.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/harness/report.cpp.o.d"
  "/root/repo/src/harness/sweep.cpp" "src/CMakeFiles/qserv.dir/harness/sweep.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/harness/sweep.cpp.o.d"
  "/root/repo/src/net/bytestream.cpp" "src/CMakeFiles/qserv.dir/net/bytestream.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/net/bytestream.cpp.o.d"
  "/root/repo/src/net/netchan.cpp" "src/CMakeFiles/qserv.dir/net/netchan.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/net/netchan.cpp.o.d"
  "/root/repo/src/net/protocol.cpp" "src/CMakeFiles/qserv.dir/net/protocol.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/net/protocol.cpp.o.d"
  "/root/repo/src/net/virtual_udp.cpp" "src/CMakeFiles/qserv.dir/net/virtual_udp.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/net/virtual_udp.cpp.o.d"
  "/root/repo/src/sim/combat.cpp" "src/CMakeFiles/qserv.dir/sim/combat.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/sim/combat.cpp.o.d"
  "/root/repo/src/sim/cost_model.cpp" "src/CMakeFiles/qserv.dir/sim/cost_model.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/sim/cost_model.cpp.o.d"
  "/root/repo/src/sim/entity.cpp" "src/CMakeFiles/qserv.dir/sim/entity.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/sim/entity.cpp.o.d"
  "/root/repo/src/sim/game_rules.cpp" "src/CMakeFiles/qserv.dir/sim/game_rules.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/sim/game_rules.cpp.o.d"
  "/root/repo/src/sim/items.cpp" "src/CMakeFiles/qserv.dir/sim/items.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/sim/items.cpp.o.d"
  "/root/repo/src/sim/move.cpp" "src/CMakeFiles/qserv.dir/sim/move.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/sim/move.cpp.o.d"
  "/root/repo/src/sim/snapshot.cpp" "src/CMakeFiles/qserv.dir/sim/snapshot.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/sim/snapshot.cpp.o.d"
  "/root/repo/src/sim/world.cpp" "src/CMakeFiles/qserv.dir/sim/world.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/sim/world.cpp.o.d"
  "/root/repo/src/spatial/areanode_tree.cpp" "src/CMakeFiles/qserv.dir/spatial/areanode_tree.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/spatial/areanode_tree.cpp.o.d"
  "/root/repo/src/spatial/collision.cpp" "src/CMakeFiles/qserv.dir/spatial/collision.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/spatial/collision.cpp.o.d"
  "/root/repo/src/spatial/map.cpp" "src/CMakeFiles/qserv.dir/spatial/map.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/spatial/map.cpp.o.d"
  "/root/repo/src/spatial/map_gen.cpp" "src/CMakeFiles/qserv.dir/spatial/map_gen.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/spatial/map_gen.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "src/CMakeFiles/qserv.dir/util/histogram.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/util/histogram.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/qserv.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/util/table.cpp.o.d"
  "/root/repo/src/vthread/fiber.cpp" "src/CMakeFiles/qserv.dir/vthread/fiber.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/vthread/fiber.cpp.o.d"
  "/root/repo/src/vthread/real_platform.cpp" "src/CMakeFiles/qserv.dir/vthread/real_platform.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/vthread/real_platform.cpp.o.d"
  "/root/repo/src/vthread/sim_platform.cpp" "src/CMakeFiles/qserv.dir/vthread/sim_platform.cpp.o" "gcc" "src/CMakeFiles/qserv.dir/vthread/sim_platform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
