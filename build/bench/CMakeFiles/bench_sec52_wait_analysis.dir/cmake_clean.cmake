file(REMOVE_RECURSE
  "CMakeFiles/bench_sec52_wait_analysis.dir/bench_sec52_wait_analysis.cpp.o"
  "CMakeFiles/bench_sec52_wait_analysis.dir/bench_sec52_wait_analysis.cpp.o.d"
  "bench_sec52_wait_analysis"
  "bench_sec52_wait_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec52_wait_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
