# Empty compiler generated dependencies file for bench_sec52_wait_analysis.
# This may be replaced when dependencies are built.
