file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_transport.dir/bench_micro_transport.cpp.o"
  "CMakeFiles/bench_micro_transport.dir/bench_micro_transport.cpp.o.d"
  "bench_micro_transport"
  "bench_micro_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
