file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_lock_analysis.dir/bench_fig7_lock_analysis.cpp.o"
  "CMakeFiles/bench_fig7_lock_analysis.dir/bench_fig7_lock_analysis.cpp.o.d"
  "bench_fig7_lock_analysis"
  "bench_fig7_lock_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_lock_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
