# Empty compiler generated dependencies file for bench_fig7_lock_analysis.
# This may be replaced when dependencies are built.
