# Empty compiler generated dependencies file for bench_map_visibility.
# This may be replaced when dependencies are built.
