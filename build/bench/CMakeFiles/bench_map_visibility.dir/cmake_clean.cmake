file(REMOVE_RECURSE
  "CMakeFiles/bench_map_visibility.dir/bench_map_visibility.cpp.o"
  "CMakeFiles/bench_map_visibility.dir/bench_map_visibility.cpp.o.d"
  "bench_map_visibility"
  "bench_map_visibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_map_visibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
