file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_locking.dir/bench_micro_locking.cpp.o"
  "CMakeFiles/bench_micro_locking.dir/bench_micro_locking.cpp.o.d"
  "bench_micro_locking"
  "bench_micro_locking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_locking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
