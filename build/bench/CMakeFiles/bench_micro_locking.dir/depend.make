# Empty dependencies file for bench_micro_locking.
# This may be replaced when dependencies are built.
