# Empty dependencies file for bench_fig6_optimized_locking.
# This may be replaced when dependencies are built.
