file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_optimized_locking.dir/bench_fig6_optimized_locking.cpp.o"
  "CMakeFiles/bench_fig6_optimized_locking.dir/bench_fig6_optimized_locking.cpp.o.d"
  "bench_fig6_optimized_locking"
  "bench_fig6_optimized_locking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_optimized_locking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
