# Empty dependencies file for bench_micro_areanode.
# This may be replaced when dependencies are built.
