file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_areanode.dir/bench_micro_areanode.cpp.o"
  "CMakeFiles/bench_micro_areanode.dir/bench_micro_areanode.cpp.o.d"
  "bench_micro_areanode"
  "bench_micro_areanode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_areanode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
