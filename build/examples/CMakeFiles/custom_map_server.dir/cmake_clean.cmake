file(REMOVE_RECURSE
  "CMakeFiles/custom_map_server.dir/custom_map_server.cpp.o"
  "CMakeFiles/custom_map_server.dir/custom_map_server.cpp.o.d"
  "custom_map_server"
  "custom_map_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_map_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
