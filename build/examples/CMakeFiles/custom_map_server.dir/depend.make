# Empty dependencies file for custom_map_server.
# This may be replaced when dependencies are built.
