# Empty compiler generated dependencies file for deathmatch_tournament.
# This may be replaced when dependencies are built.
