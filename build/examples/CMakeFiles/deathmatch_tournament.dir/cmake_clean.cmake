file(REMOVE_RECURSE
  "CMakeFiles/deathmatch_tournament.dir/deathmatch_tournament.cpp.o"
  "CMakeFiles/deathmatch_tournament.dir/deathmatch_tournament.cpp.o.d"
  "deathmatch_tournament"
  "deathmatch_tournament.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deathmatch_tournament.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
