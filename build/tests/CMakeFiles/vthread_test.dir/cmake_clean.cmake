file(REMOVE_RECURSE
  "CMakeFiles/vthread_test.dir/vthread_test.cpp.o"
  "CMakeFiles/vthread_test.dir/vthread_test.cpp.o.d"
  "vthread_test"
  "vthread_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vthread_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
