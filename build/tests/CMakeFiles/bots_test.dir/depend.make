# Empty dependencies file for bots_test.
# This may be replaced when dependencies are built.
