file(REMOVE_RECURSE
  "CMakeFiles/bots_test.dir/bots_test.cpp.o"
  "CMakeFiles/bots_test.dir/bots_test.cpp.o.d"
  "bots_test"
  "bots_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bots_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
