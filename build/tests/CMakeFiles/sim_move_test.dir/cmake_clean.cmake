file(REMOVE_RECURSE
  "CMakeFiles/sim_move_test.dir/sim_move_test.cpp.o"
  "CMakeFiles/sim_move_test.dir/sim_move_test.cpp.o.d"
  "sim_move_test"
  "sim_move_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_move_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
