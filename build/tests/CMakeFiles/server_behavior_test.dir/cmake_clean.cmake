file(REMOVE_RECURSE
  "CMakeFiles/server_behavior_test.dir/server_behavior_test.cpp.o"
  "CMakeFiles/server_behavior_test.dir/server_behavior_test.cpp.o.d"
  "server_behavior_test"
  "server_behavior_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
