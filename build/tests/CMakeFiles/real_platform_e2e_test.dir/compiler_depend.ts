# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for real_platform_e2e_test.
