file(REMOVE_RECURSE
  "CMakeFiles/real_platform_e2e_test.dir/real_platform_e2e_test.cpp.o"
  "CMakeFiles/real_platform_e2e_test.dir/real_platform_e2e_test.cpp.o.d"
  "real_platform_e2e_test"
  "real_platform_e2e_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_platform_e2e_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
