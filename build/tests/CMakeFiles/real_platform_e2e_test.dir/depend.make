# Empty dependencies file for real_platform_e2e_test.
# This may be replaced when dependencies are built.
