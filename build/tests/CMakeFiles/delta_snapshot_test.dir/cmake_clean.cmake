file(REMOVE_RECURSE
  "CMakeFiles/delta_snapshot_test.dir/delta_snapshot_test.cpp.o"
  "CMakeFiles/delta_snapshot_test.dir/delta_snapshot_test.cpp.o.d"
  "delta_snapshot_test"
  "delta_snapshot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_snapshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
