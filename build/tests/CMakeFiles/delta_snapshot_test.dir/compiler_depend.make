# Empty compiler generated dependencies file for delta_snapshot_test.
# This may be replaced when dependencies are built.
