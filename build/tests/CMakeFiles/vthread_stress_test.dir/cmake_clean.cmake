file(REMOVE_RECURSE
  "CMakeFiles/vthread_stress_test.dir/vthread_stress_test.cpp.o"
  "CMakeFiles/vthread_stress_test.dir/vthread_stress_test.cpp.o.d"
  "vthread_stress_test"
  "vthread_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vthread_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
