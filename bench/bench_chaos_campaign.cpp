// Chaos campaign — does the fleet contain composed failures, not just
// survive the single-crash showcase?
//
// One no-fault baseline plus the standard fault-composition suite
// (src/chaos/campaign.hpp) against the paper's 4-shard capacity anchor
// (4 threads x 160 players per shard, 640 players total): single and
// simultaneous crashes, crash loops against the circuit breaker,
// corrupt-checkpoint fallback, client partitions, loss storms,
// crash-mid-handoff and stranded-mailbox reclaim, and the quarantine
// cap under triple failure. Every scenario is seed-deterministic and
// scored by an automated verdict:
//
//   * zero lost clients at the end of every scenario;
//   * InvariantChecker clean on every live shard (the audit runs every
//     frame in all campaign runs);
//   * recovery pauses inside 12.5 ms — or an explicitly declared SLO
//     breach, which marks the verdict "degraded" instead of passing
//     silently;
//   * every SLO-monitor breach accounted for by the scenario;
//   * unaffected shards' journal digest streams bit-identical to the
//     no-fault baseline (blast radius stays inside the failure domain).
//
// Exits non-zero if any verdict fails — CI runs this as a smoke check.
#include <cinttypes>
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "src/chaos/campaign.hpp"
#include "src/harness/shard_experiment.hpp"
#include "src/shard/manager.hpp"

using namespace qserv;

namespace {

constexpr int kShards = 4;
constexpr int kPlayersPerShard = 160;  // paper's 4-thread capacity anchor

harness::ShardExperimentConfig fleet_config() {
  harness::ShardExperimentConfig cfg;
  cfg.fleet.shards = kShards;
  cfg.fleet.server.threads = 4;
  cfg.fleet.server.lock_policy = core::LockPolicy::kConservative;
  cfg.fleet.server.recovery.enabled = true;
  cfg.fleet.server.recovery.checkpoint_interval = 64;
  cfg.fleet.server.recovery.journal_frames = 256;
  // The verdict's "invariants clean" guard needs the audit on. It
  // charges no modelled compute, and every campaign run (baseline
  // included) carries it, so digest bit-identity still compares like
  // with like.
  cfg.fleet.server.check_invariants = true;
  // Pin sessions to their join shard by default; scenarios that need
  // roaming (handoff faults) narrow the margin in their tweak and give
  // up their digest claim.
  cfg.fleet.boundary_margin = 1e9f;
  cfg.players = kShards * kPlayersPerShard;
  cfg.warmup = vt::seconds_d(bench::env_seconds("QSERV_WARMUP_SECONDS", 2.0));
  cfg.measure = vt::seconds_d(bench::env_seconds("QSERV_MEASURE_SECONDS", 8.0));
  cfg.client_silence_timeout = vt::seconds(2);
  cfg.seed = 42;
  cfg.machine.cores = 16;
  cfg.machine.ht_per_core = 2;
  return cfg;
}

std::string scenario_point_json(const chaos::ScenarioOutcome& o) {
  const harness::ShardExperimentResult& r = o.result;
  uint64_t escalations = 0, restores = 0;
  int sheds = 0;
  for (const auto& s : r.shards) {
    escalations += s.escalations;
    restores += static_cast<uint64_t>(s.restores);
    if (s.state == shard::ShardState::kShed) ++sheds;
  }
  std::string out;
  obs::JsonWriter w(out);
  w.begin_object();
  w.kv("label", o.name);  // qserv-trend keys chaos points by label
  w.kv("description", o.description);
  w.kv("pass", o.verdict.pass);
  w.kv("degraded", o.verdict.degraded);
  w.kv("connected", static_cast<int64_t>(r.connected));
  // Keyed metric for qserv-trend: client survival must never decrease.
  w.key("response");
  w.begin_object();
  w.kv("connected", static_cast<int64_t>(r.connected));
  w.end_object();
  w.kv("silence_reconnects", r.silence_reconnects);
  w.kv("escalations", escalations);
  w.kv("restores", restores);
  w.kv("sheds", static_cast<int64_t>(sheds));
  w.kv("handoffs_returned", r.handoffs_returned);
  w.kv("overflow_sheds", r.overflow_sheds);
  w.kv("digest_frames_checked", o.digest_frames_checked);
  w.kv("slo_breaches", static_cast<int64_t>(r.slo_breaches.size()));
  w.key("allowed_breaches");
  w.begin_array();
  for (const std::string& b : o.verdict.allowed_breaches) w.value(b);
  w.end_array();
  w.key("failures");
  w.begin_array();
  for (const std::string& f : o.verdict.failures) w.value(f);
  w.end_array();
  w.end_object();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOutput out("chaos_campaign", argc, argv);
  bench::print_header(
      "Chaos campaign — composed-failure containment verdicts",
      "robustness extension (deterministic fault scenarios, automated "
      "verdicts)");

  const auto base = fleet_config();
  chaos::Campaign::Options copt;
  copt.verbose = true;
  chaos::Campaign campaign(base, copt);
  for (chaos::Scenario& s : chaos::standard_scenarios(base))
    campaign.add(std::move(s));

  std::printf("campaign: %zu scenarios, %d shards x %d players, seed %" PRIu64
              "\n\n",
              campaign.scenarios().size(), kShards, kPlayersPerShard,
              base.seed);
  std::fflush(stdout);

  chaos::CampaignResult res = campaign.run();

  // ---- report --------------------------------------------------------
  std::printf("\n");
  Table t("Chaos campaign verdicts (each scenario vs the no-fault baseline)");
  t.header({"scenario", "verdict", "conn", "esc", "rest", "shed", "returns",
            "digest frames"});
  for (const chaos::ScenarioOutcome& o : res.outcomes) {
    uint64_t esc = 0, rest = 0;
    int sheds = 0;
    for (const auto& s : o.result.shards) {
      esc += s.escalations;
      rest += static_cast<uint64_t>(s.restores);
      if (s.state == shard::ShardState::kShed) ++sheds;
    }
    t.row({o.name,
           o.verdict.pass ? (o.verdict.degraded ? "pass (degraded)" : "pass")
                          : "FAIL",
           std::to_string(o.result.connected), std::to_string(esc),
           std::to_string(rest), std::to_string(sheds),
           std::to_string(o.result.handoffs_returned),
           std::to_string(o.digest_frames_checked)});
  }
  t.print();
  std::printf("\n");

  if (!res.baseline_ok)
    for (const std::string& f : res.baseline_failures)
      std::fprintf(stderr, "FAIL: baseline: %s\n", f.c_str());
  for (const chaos::ScenarioOutcome& o : res.outcomes)
    for (const std::string& f : o.verdict.failures)
      std::fprintf(stderr, "FAIL: %s: %s\n", o.name.c_str(), f.c_str());

  // ---- export --------------------------------------------------------
  {
    std::string b;
    obs::JsonWriter w(b);
    w.begin_object();
    w.kv("label", "baseline");
    w.kv("pass", res.baseline_ok);
    w.kv("connected", static_cast<int64_t>(res.baseline.connected));
    w.key("response");
    w.begin_object();
    w.kv("connected", static_cast<int64_t>(res.baseline.connected));
    w.end_object();
    w.kv("slo_breaches",
         static_cast<int64_t>(res.baseline.slo_breaches.size()));
    w.end_object();
    out.add_raw("chaos", b);
  }
  for (const chaos::ScenarioOutcome& o : res.outcomes)
    out.add_raw("chaos", scenario_point_json(o));

  const int failed = res.failed_scenarios();
  if (failed == 0)
    std::printf("all %zu scenario verdicts passed (baseline clean)\n",
                res.outcomes.size());
  else
    std::fprintf(stderr, "%d verdict(s) FAILED\n", failed);

  const int rc = out.finish();
  return failed > 0 ? 1 : rc;
}
