// Overload protection & self-healing: what does the resilience subsystem
// buy at and past the capacity knee?
//
// Part 1 — load vs response under overload. The paper's 4-thread
// conservative server saturates around 144 players (§4.2 / Fig. 5); in
// this testbed the knee sits a little higher (~200), so we use a
// 160-player capacity anchor and drive the server at 1x, 1.5x and 2x
// with the resilience subsystem off vs on (governor + admission control
// + move-rate limit).
// The metric is the client-side response fraction: replies received per
// move sent. Off, past saturation the frame loop falls behind its
// clients, receive queues overflow, and the fraction collapses; on, the
// governor degrades fidelity (far-entity thinning, move coalescing,
// shedding, last-resort eviction) and admission control bounds the
// admitted population, holding the fraction of offered load answered
// above a governed floor.
//
// Part 2 — stall recovery. A worker wedged for a full second mid-run
// (FaultScheduler kThreadStall) must be detected by the watchdog within
// its timeout, its clients migrated to live workers, and the worker
// re-admitted when it wakes — with zero clients lost.
//
// Exit code: non-zero if the governed floor or the stall-recovery
// acceptance fails (CI runs this as a smoke check).
#include <cinttypes>

#include "bench_common.hpp"
#include "src/net/virtual_udp.hpp"
#include "src/net/fault_scheduler.hpp"

using namespace qserv;
using namespace qserv::harness;

namespace {

constexpr int kCapacityPlayers = 160;  // 1x anchor for the 4-thread server
constexpr double kGovernedFloor = 0.70;   // ON response fraction at 2x
constexpr double kCollapseCeiling = 0.40; // OFF response fraction at 2x

ExperimentConfig base_config(int players) {
  auto cfg = paper_config(ServerMode::kParallel, 4, players,
                          core::LockPolicy::kConservative);
  bench::apply_windows(cfg);
  return cfg;
}

void enable_resilience(core::ServerConfig& scfg) {
  auto& r = scfg.resilience;
  r.governor = true;
  r.tick_budget = vt::millis(33);
  r.window = 16;
  r.dwell = 8;
  r.admission_control = true;
  r.admission_ratio = 1.25;
  r.move_rate_limit = 45.0;  // honest 30 fps clients stay well under
  r.move_burst = 15.0;
}

double response_fraction(const ExperimentResult& r) {
  return r.client_moves_sent > 0
             ? static_cast<double>(r.client_replies) /
                   static_cast<double>(r.client_moves_sent)
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOutput out("overload_degradation", argc, argv);
  bench::print_header(
      "Overload protection — response under load, governor off vs on",
      "robustness extension (the §5.2 saturation cliff, governed)");

  // ---- Part 1: load ramp, governor off vs on ------------------------
  const std::vector<double> loads{1.0, 1.5, 2.0};
  bool failed = false;

  Table ramp("Response under overload (4 threads, conservative locking)");
  ramp.header({"load", "players", "resilience", "replies/s", "resp frac",
               "max rung", "coalesced", "shed", "busy-rejects"});
  double frac_off_2x = 0.0, frac_on_2x = 0.0;
  for (const double load : loads) {
    const int players = static_cast<int>(kCapacityPlayers * load);
    for (const bool on : {false, true}) {
      auto cfg = base_config(players);
      if (on) enable_resilience(cfg.server);
      const auto r = run_experiment(cfg);
      const double frac = response_fraction(r);
      if (load == 2.0) (on ? frac_on_2x : frac_off_2x) = frac;
      const std::string label = std::to_string(players) + "p/" +
                                (on ? "governed" : "baseline");
      out.add("ramp", label, cfg, r);
      ramp.row({Table::num(load, 1) + "x", std::to_string(players),
                on ? "governed" : "off", Table::num(r.response_rate, 0),
                Table::num(frac, 2),
                resilience::degrade_level_name(r.max_degrade_level),
                std::to_string(r.moves_coalesced),
                std::to_string(r.governor_evictions),
                std::to_string(r.rejected_busy)});
    }
  }
  std::printf("\n");
  ramp.print();

  std::printf(
      "\nresponse fraction at 2.0x capacity: baseline %.2f, governed %.2f\n",
      frac_off_2x, frac_on_2x);
  if (frac_on_2x < kGovernedFloor) {
    std::fprintf(stderr,
                 "FAIL: governed response fraction %.2f at 2x capacity is "
                 "below the %.2f floor\n",
                 frac_on_2x, kGovernedFloor);
    failed = true;
  } else {
    std::printf("governed floor (>= %.2f) held\n", kGovernedFloor);
  }
  if (frac_off_2x >= kCollapseCeiling) {
    std::printf(
        "note: baseline fraction %.2f did not collapse below %.2f — the "
        "overload margin may need recalibrating\n",
        frac_off_2x, kCollapseCeiling);
  }

  // ---- Part 2: worker stall detection and recovery ------------------
  auto stall_cfg = base_config(64);
  stall_cfg.server.resilience.watchdog_timeout = vt::millis(250);
  stall_cfg.server.check_invariants = true;
  // Wedge worker 2 for a full second, one second into measurement.
  const vt::TimePoint stall_at =
      vt::TimePoint::zero() + stall_cfg.warmup + vt::seconds(1);
  stall_cfg.configure_network = [stall_at](net::VirtualNetwork& net) {
    net.faults().add_thread_stall(stall_at, vt::seconds(1), 2);
  };
  const auto rs = run_experiment(stall_cfg);
  out.add("stall", "stall-recovery", stall_cfg, rs);

  Table stall("Worker stall recovery (watchdog timeout 250 ms)");
  stall.header({"metric", "value"});
  stall.row({"stalls injected", std::to_string(rs.stalls_injected)});
  stall.row({"stalls detected", std::to_string(rs.stalls_detected)});
  stall.row({"stalls recovered", std::to_string(rs.stalls_recovered)});
  stall.row({"clients migrated", std::to_string(rs.stall_reassignments)});
  stall.row({"clients connected at end",
             std::to_string(rs.connected) + " / 64"});
  stall.row({"evictions", std::to_string(rs.evictions)});
  stall.row({"replies/s through the stall", Table::num(rs.response_rate, 0)});
  std::printf("\n");
  stall.print();

  const bool stall_ok = rs.stalls_injected >= 1 && rs.stalls_detected >= 1 &&
                        rs.stalls_recovered >= 1 &&
                        rs.stall_reassignments >= 1 && rs.connected == 64 &&
                        rs.evictions == 0 && rs.invariant_violations == 0;
  if (!stall_ok) {
    std::fprintf(stderr,
                 "FAIL: stall recovery acceptance not met (injected=%" PRIu64
                 " detected=%" PRIu64 " recovered=%" PRIu64
                 " migrated=%" PRIu64 " connected=%d evictions=%" PRIu64
                 " violations=%" PRIu64 ")\n",
                 rs.stalls_injected, rs.stalls_detected, rs.stalls_recovered,
                 rs.stall_reassignments, rs.connected, rs.evictions,
                 rs.invariant_violations);
    failed = true;
  } else {
    std::printf(
        "\nstall detected and recovered within the run; zero clients lost\n");
  }

  // Representative timeline: the governed server at 2x capacity.
  {
    auto traced = base_config(kCapacityPlayers * 2);
    enable_resilience(traced.server);
    out.capture_trace(traced);
  }
  const int rc = out.finish();
  return failed ? 1 : rc;
}
