// Figure 6: performance with optimized locking (§4.3) — expanded
// bounding-box locks for type-1 objects (grenades) and directional locks
// for type-2 objects (hitscans) instead of locking the whole map.
// Paper findings to match: lock time reduced by more than half in all
// configurations (to 1-20%); idle time rises; the 8-thread optimized
// server supports ~25% more players than the sequential server.
#include "bench_common.hpp"

using namespace qserv;
using namespace qserv::harness;

int main(int argc, char** argv) {
  bench::BenchOutput out("fig6_optimized_locking", argc, argv);
  bench::print_header("Figure 6 — performance with optimized locking",
                      "Fig. 6(a,b,c), §4.3");

  const std::vector<int> threads{2, 4, 8};
  // Extended beyond the paper's 160 so the optimized servers' saturation
  // points are actually reached.
  const std::vector<int> players{64, 96, 128, 144, 160, 176, 192, 208, 224};

  auto optimized = paper_grid(threads, players, core::LockPolicy::kOptimized);
  for (auto& p : optimized) bench::apply_windows(p.config);
  run_sweep(optimized);

  // Conservative baseline at the same points, for the lock-time
  // comparison the paper makes against Figure 5.
  auto conservative =
      paper_grid(threads, players, core::LockPolicy::kConservative);
  for (auto& p : conservative) bench::apply_windows(p.config);
  run_sweep(conservative);

  // Sequential reference for the "+25% players" claim.
  std::vector<SweepPoint> seq;
  for (const int n : players) {
    SweepPoint p;
    p.label = "seq/" + std::to_string(n) + "p";
    p.config =
        paper_config(ServerMode::kSequential, 1, n, core::LockPolicy::kNone);
    bench::apply_windows(p.config);
    seq.push_back(std::move(p));
  }
  run_sweep(seq);

  out.add_points("optimized", optimized);
  out.add_points("conservative", conservative);
  out.add_points("sequential", seq);

  Table breakdowns("Fig 6(a): breakdowns with optimized locking (% of total)");
  breakdowns.header(breakdown_header("threads/players"));
  for (const auto& p : optimized)
    breakdowns.row(breakdown_row(p.label, p.result));
  std::printf("\n");
  breakdowns.print();

  Table locks("Lock time: conservative (Fig 5) vs optimized (Fig 6)");
  locks.header({"threads/players", "conservative", "optimized", "reduction"});
  for (size_t i = 0; i < optimized.size(); ++i) {
    const double c = conservative[i].result.pct.lock();
    const double o = optimized[i].result.pct.lock();
    locks.row({optimized[i].label, Table::pct(c), Table::pct(o),
               Table::pct(c > 0 ? 1.0 - o / c : 0.0)});
  }
  std::printf("\n");
  locks.print();

  Table rates("Fig 6(b): response rate (replies/s), optimized locking");
  {
    std::vector<std::string> hdr{"players", "seq"};
    for (const int t : threads) hdr.push_back(std::to_string(t) + "t");
    rates.header(hdr);
    for (size_t i = 0; i < players.size(); ++i) {
      std::vector<std::string> row{std::to_string(players[i]),
                                   Table::num(seq[i].result.response_rate, 0)};
      for (size_t t = 0; t < threads.size(); ++t)
        row.push_back(Table::num(
            optimized[t * players.size() + i].result.response_rate, 0));
      rates.row(row);
    }
  }
  std::printf("\n");
  rates.print();

  Table resp("Fig 6(c): average response time (ms), optimized locking");
  {
    std::vector<std::string> hdr{"players", "seq"};
    for (const int t : threads) hdr.push_back(std::to_string(t) + "t");
    resp.header(hdr);
    for (size_t i = 0; i < players.size(); ++i) {
      std::vector<std::string> row{
          std::to_string(players[i]),
          Table::num(seq[i].result.response_ms_mean, 1)};
      for (size_t t = 0; t < threads.size(); ++t)
        row.push_back(Table::num(
            optimized[t * players.size() + i].result.response_ms_mean, 1));
      resp.row(row);
    }
  }
  std::printf("\n");
  resp.print();

  // Headline claim: supported players, optimized 8T vs sequential.
  Table sat("Supported players (saturation) — the paper's +25% headline");
  sat.header({"server", "saturation players", "vs sequential"});
  const int seq_sat = saturation_players(seq, players);
  sat.row({"sequential", std::to_string(seq_sat), "--"});
  for (size_t t = 0; t < threads.size(); ++t) {
    std::vector<SweepPoint> slice(
        optimized.begin() + long(t * players.size()),
        optimized.begin() + long((t + 1) * players.size()));
    const int s = saturation_players(slice, players);
    sat.row({std::to_string(threads[t]) + "t optimized", std::to_string(s),
             "+" + Table::num(100.0 * (s - seq_sat) / seq_sat, 0) + "%"});
  }
  std::printf("\n");
  sat.print();

  out.capture_trace(paper_config(ServerMode::kParallel, 4, 160,
                                 core::LockPolicy::kOptimized));
  return out.finish();
}
