// Ablation (paper §5.2 future work): request batching. "One possible
// approach to reduce wait times is to batch incoming requests. For
// instance, the frame master thread can wait for a period of time before
// starting the frame." We sweep that window and measure its effect on
// inter-frame wait, response rate, and response time.
#include "bench_common.hpp"

using namespace qserv;
using namespace qserv::harness;

int main(int argc, char** argv) {
  bench::BenchOutput out("ablation_batching", argc, argv);
  bench::print_header(
      "Ablation — request batching (master delays frame start)",
      "§5.2 future-work proposal");

  Table t("Batching window sweep, 4 threads, conservative locking");
  t.header({"players", "window (ms)", "rate (replies/s)", "resp (ms)",
            "req/thread/frame", "intra-wait", "inter-wait", "lock"});
  for (const int players : {128, 160}) {
    for (const int window_ms : {0, 1, 2, 4, 8}) {
      auto cfg = paper_config(ServerMode::kParallel, 4, players,
                              core::LockPolicy::kConservative);
      cfg.server.batch_window = vt::millis(window_ms);
      bench::apply_windows(cfg);
      const auto r = run_experiment(cfg);
      const std::string label = std::to_string(players) + "p/batch-" +
                                std::to_string(window_ms) + "ms";
      print_summary(label, r);
      out.add("batching", label, cfg, r);
      t.row({std::to_string(players), std::to_string(window_ms),
             Table::num(r.response_rate, 0),
             Table::num(r.response_ms_mean, 1),
             Table::num(r.requests_per_thread_frame_mean, 2),
             Table::pct(r.pct.intra_wait), Table::pct(r.pct.inter_wait()),
             Table::pct(r.pct.lock())});
    }
  }
  std::printf("\n");
  t.print();

  auto trace_cfg = paper_config(ServerMode::kParallel, 4, 160,
                                core::LockPolicy::kConservative);
  trace_cfg.server.batch_window = vt::millis(4);
  out.capture_trace(trace_cfg);
  return out.finish();
}
