// Shard failover — what does a shard crash cost the fleet, and does the
// blast radius stay inside the failure domain?
//
// Two identical 4-shard runs at the paper's capacity anchor per shard
// (4 threads x 160 players each, 640 players total), sessions pinned to
// their join shard so the crash is the only difference between runs:
//
//   baseline  — no faults;
//   failover  — shard 1 is crashed mid-measure. The supervisor must
//               quarantine it, rebuild the engine, restore the last
//               frame-aligned checkpoint, replay the journal tail to the
//               failure frame (digest-verified per frame), and resume
//               every client in place.
//
// Guards (exit non-zero on any breach — CI runs this as a smoke check):
//   * zero clients lost: all 640 clients hold live sessions at the end,
//     with zero silence-timeout reconnects (in-place resume, not rejoin);
//   * the host-clock recovery pause stays under 12.5 ms — half a 25 ms
//     master frame, same budget as the checkpoint writer's;
//   * the restored tail replay is digest-verified to the failure frame;
//   * fault isolation: the three unaffected shards' per-frame journal
//     digest streams are bit-identical to the baseline run's;
//   * SLO verdict: both runs carry the fleet observability plane, and
//     every observation window must hold the declarative fleet SLOs
//     (frame p99, recovery pause, handoff latency, zero lost clients);
//   * the SLO monitor actually detects: an overloaded 1-thread shard is
//     run as a canary and MUST breach the 12.5 ms frame-p99 budget.
//
// --trace captures a third, handoff-enabled run (shard 1 crashed
// mid-measure) into one merged Chrome trace: each shard renders as its
// own process, session handoffs draw as connected flow arrows between
// shard timelines, and the supervisor's quarantine/restore transitions
// appear as instant events on the failed shard's track.
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "src/harness/shard_experiment.hpp"
#include "src/obs/fleet.hpp"
#include "src/recovery/checkpoint.hpp"
#include "src/shard/manager.hpp"

using namespace qserv;

namespace {

constexpr int kShards = 4;
constexpr int kPlayersPerShard = 160;  // paper's 4-thread capacity anchor
constexpr double kMaxPauseMs = 12.5;   // half a 25 ms master frame

harness::ShardExperimentConfig fleet_config() {
  harness::ShardExperimentConfig cfg;
  cfg.fleet.shards = kShards;
  cfg.fleet.server.threads = 4;
  cfg.fleet.server.lock_policy = core::LockPolicy::kConservative;
  cfg.fleet.server.recovery.enabled = true;
  cfg.fleet.server.recovery.checkpoint_interval = 64;
  cfg.fleet.server.recovery.journal_frames = 256;
  // Pin sessions to their join shard: with no cross-shard traffic the
  // unaffected shards' digest streams are comparable across runs.
  cfg.fleet.boundary_margin = 1e9f;
  cfg.players = kShards * kPlayersPerShard;
  cfg.warmup = vt::seconds_d(bench::env_seconds("QSERV_WARMUP_SECONDS", 2.0));
  cfg.measure = vt::seconds_d(bench::env_seconds("QSERV_MEASURE_SECONDS", 8.0));
  // Backstop only: the acceptance path is in-place resume, and the zero
  // silence-reconnects guard proves the backstop never fired.
  cfg.client_silence_timeout = vt::seconds(2);
  cfg.seed = 42;
  // One simulated socket per server thread across the fleet.
  cfg.machine.cores = 16;
  cfg.machine.ht_per_core = 2;
  return cfg;
}

std::string shard_point_json(const char* run, int index,
                             const harness::ShardExperimentResult::PerShard& s) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"run\":\"%s\",\"shard\":%d,\"state\":\"%s\",\"frames\":%" PRIu64
      ",\"connected\":%d,\"restores\":%d,\"escalations\":%" PRIu64
      ",\"pause_ms\":%.3f,\"used_tail\":%s,\"tail_frames\":%" PRIu64
      ",\"handoffs_in\":%" PRIu64 ",\"invariant_violations\":%" PRIu64 "}",
      run, index, shard::shard_state_name(s.state), s.frames, s.connected,
      s.restores, s.escalations, s.last_pause_ms,
      s.last_used_tail ? "true" : "false",
      static_cast<uint64_t>(s.last_stats.tail_frames), s.handoffs_in,
      s.invariant_violations);
  return buf;
}

// One "slo" group point per run: the monitor's verdict plus every
// breach, structured (qserv-trend and humans both read these).
std::string slo_point_json(const char* run,
                           const harness::ShardExperimentResult& r) {
  std::string out;
  obs::JsonWriter w(out);
  w.begin_object();
  w.kv("run", run);
  w.kv("handoff_flows", r.handoff_flows);
  w.kv("slo_evaluations", r.slo_evaluations);
  w.kv("slo_ok", r.slo_breaches.empty());
  w.key("slo_breaches");
  w.begin_array();
  for (const obs::SloBreach& b : r.slo_breaches) {
    w.begin_object();
    w.kv("slo", b.slo);
    w.kv("metric", b.metric);
    w.kv("scope", b.scope);
    w.kv("observed", b.observed);
    w.kv("bound", b.bound);
    w.kv("t_seconds", b.t_seconds);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOutput out("shard_failover", argc, argv);
  bench::print_header(
      "Shard failover — supervised recovery cost and blast radius",
      "robustness extension (multi-shard engine, zero-client-loss failover)");

  bool failed = false;
  auto fail = [&](const char* fmt, auto... args) {
    std::fprintf(stderr, fmt, args...);
    failed = true;
  };

  // ---- baseline: the same fleet, no faults --------------------------
  // Both guarded runs carry the full observability plane (metrics
  // federation + SLO monitor, no tracer). It charges no modelled
  // compute, and both runs carry it identically, so the digest
  // bit-identity guard still compares like with like.
  auto base_cfg = fleet_config();
  obs::FleetObs::Config obs_cfg;
  obs_cfg.expected_clients = base_cfg.players;
  obs::FleetObs base_obs(nullptr, obs_cfg);
  base_cfg.fleet_obs = &base_obs;
  std::printf("running baseline fleet (%d shards x %d players)...\n", kShards,
              kPlayersPerShard);
  std::fflush(stdout);
  const auto baseline = harness::run_shard_experiment(base_cfg);

  // ---- failover: crash shard 1 mid-measure --------------------------
  auto crash_cfg = fleet_config();
  obs::FleetObs crash_obs(nullptr, obs_cfg);
  crash_cfg.fleet_obs = &crash_obs;
  const vt::Duration crash_at =
      crash_cfg.warmup + vt::Duration{crash_cfg.measure.ns / 2};
  crash_cfg.schedule_faults = [crash_at](vt::Platform& p,
                                         shard::ShardManager& mgr) {
    p.call_after(crash_at, [&mgr] { mgr.crash_shard(1); });
  };
  std::printf("running failover fleet (shard 1 crashed at t=%.1fs)...\n",
              static_cast<double>(crash_at.ns) / 1e9);
  std::fflush(stdout);
  const auto failover = harness::run_shard_experiment(crash_cfg);

  // ---- report --------------------------------------------------------
  Table fleet("Fleet comparison (640 players, shard 1 crashed mid-measure)");
  fleet.header({"run", "connected", "resp/s", "resp p95 ms", "reconnects",
                "supervisor ticks"});
  for (const auto* rr : {&baseline, &failover}) {
    fleet.row({rr == &baseline ? "baseline" : "failover",
               std::to_string(rr->connected), Table::num(rr->response_rate, 0),
               Table::num(rr->response_ms_p95, 2),
               std::to_string(rr->silence_reconnects),
               std::to_string(rr->supervisor_ticks)});
  }
  fleet.print();

  Table per("Failover run, per shard");
  per.header({"shard", "state", "frames", "connected", "restores",
              "pause ms", "tail frames", "digest ok"});
  for (int i = 0; i < kShards; ++i) {
    const auto& s = failover.shards[static_cast<size_t>(i)];
    per.row({std::to_string(i), shard::shard_state_name(s.state),
             std::to_string(s.frames), std::to_string(s.connected),
             std::to_string(s.restores),
             s.restores > 0 ? Table::num(s.last_pause_ms, 3) : "-",
             s.restores > 0
                 ? std::to_string(s.last_stats.tail_frames)
                 : "-",
             s.restores > 0 ? (s.last_stats.digest_verified ? "yes" : "NO")
                            : "-"});
  }
  std::printf("\n");
  per.print();
  std::printf("\n");

  for (const auto* rr : {&baseline, &failover}) {
    const char* run = rr == &baseline ? "baseline" : "failover";
    for (int i = 0; i < kShards; ++i)
      out.add_raw("shards",
                  shard_point_json(run, i, rr->shards[static_cast<size_t>(i)]));
    out.add_raw("slo", slo_point_json(run, *rr));
  }

  Table slo("Fleet SLO verdict (per observation window)");
  slo.header({"run", "windows", "breaches", "verdict"});
  for (const auto* rr : {&baseline, &failover})
    slo.row({rr == &baseline ? "baseline" : "failover",
             std::to_string(rr->slo_evaluations),
             std::to_string(rr->slo_breaches.size()),
             rr->slo_breaches.empty() ? "held" : "BREACHED"});
  slo.print();
  std::printf("\n");

  // ---- guards --------------------------------------------------------
  const auto& crashed = failover.shards[1];
  const int players = crash_cfg.players;

  if (baseline.connected != players)
    fail("FAIL: baseline lost clients (%d/%d connected)\n", baseline.connected,
         players);
  if (failover.connected != players || failover.shard_connected != players)
    fail("FAIL: clients lost through the crash (%d driver-side, %d "
         "registry-side, want %d)\n",
         failover.connected, failover.shard_connected, players);
  else
    std::printf("zero-client-loss guard held: %d/%d clients live\n",
                failover.connected, players);

  if (failover.silence_reconnects != 0)
    fail("FAIL: %" PRIu64
         " clients needed the silence-reconnect backstop instead of "
         "in-place resume\n",
         failover.silence_reconnects);

  if (crashed.restores != 1 || crashed.state != shard::ShardState::kHealthy ||
      crashed.last_error != recovery::LoadError::kNone)
    fail("FAIL: crashed shard not cleanly restored (restores=%d state=%s)\n",
         crashed.restores, shard::shard_state_name(crashed.state));
  if (!crashed.last_used_tail || !crashed.last_stats.digest_verified)
    fail("FAIL: restore skipped the journal tail or digest verification "
         "(used_tail=%d verified=%d)\n",
         crashed.last_used_tail ? 1 : 0,
         crashed.last_stats.digest_verified ? 1 : 0);
  else
    std::printf("restore replayed %" PRIu64
                " tail frames to the failure frame, digest-verified\n",
                static_cast<uint64_t>(crashed.last_stats.tail_frames));

  if (crashed.restores == 1 && crashed.last_pause_ms >= kMaxPauseMs)
    fail("FAIL: recovery pause %.3f ms breaches the %.1f ms budget\n",
         crashed.last_pause_ms, kMaxPauseMs);
  else if (crashed.restores == 1)
    std::printf("recovery pause budget (< %.1f ms) held: %.3f ms\n",
                kMaxPauseMs, crashed.last_pause_ms);

  // Blast radius: unaffected shards replayed bit-identically.
  for (int i = 0; i < kShards; ++i) {
    if (i == 1) continue;
    const auto& a = baseline.shards[static_cast<size_t>(i)].journal_digests;
    const auto& b = failover.shards[static_cast<size_t>(i)].journal_digests;
    if (a.empty() || a.size() != b.size()) {
      fail("FAIL: shard %d digest streams differ in length (%zu vs %zu)\n", i,
           a.size(), b.size());
      continue;
    }
    size_t mismatches = 0;
    for (size_t k = 0; k < a.size(); ++k)
      if (a[k] != b[k]) ++mismatches;
    if (mismatches > 0)
      fail("FAIL: shard %d diverged from baseline in %zu/%zu journal "
           "frames\n",
           i, mismatches, a.size());
  }
  if (!failed)
    std::printf(
        "fault isolation held: unaffected shards bit-identical to baseline "
        "across %zu journal frames each\n",
        baseline.shards[0].journal_digests.size());

  // Fleet SLOs: every observation window in both runs must hold — the
  // crash, recovery and resume all fit inside the declared budgets.
  for (const auto* rr : {&baseline, &failover}) {
    const char* run = rr == &baseline ? "baseline" : "failover";
    for (const obs::SloBreach& b : rr->slo_breaches)
      fail("FAIL: %s run breached SLO %s (%s %s=%.3f vs bound %.3f at "
           "t=%.1fs)\n",
           run, b.slo.c_str(), b.scope.c_str(), b.metric.c_str(), b.observed,
           b.bound, b.t_seconds);
    if (rr->slo_breaches.empty() && rr->slo_evaluations > 0)
      std::printf("%s run held all fleet SLOs across %" PRIu64
                  " observation windows\n",
                  run, rr->slo_evaluations);
  }

  // ---- SLO canary: the monitor must catch a real breach --------------
  // One shard on one thread at 4x its capacity anchor cannot hold the
  // 12.5 ms frame budget; if the monitor stays quiet here it is not
  // observing anything.
  {
    harness::ShardExperimentConfig ocfg;
    ocfg.fleet.shards = 1;
    ocfg.fleet.server.threads = 1;
    ocfg.fleet.server.lock_policy = core::LockPolicy::kConservative;
    ocfg.players = 4 * kPlayersPerShard;
    ocfg.warmup = vt::seconds(1);
    ocfg.measure = vt::seconds(2);
    ocfg.seed = 42;
    obs::FleetObs::Config canary_cfg;
    canary_cfg.slos = {obs::SloSpec{.name = "frame_p99",
                                    .metric = "server.frame_duration_ms",
                                    .stat = obs::SloSpec::Stat::kP99,
                                    .cmp = obs::SloSpec::Cmp::kLE,
                                    .bound = 12.5,
                                    .min_count = 20}};
    obs::FleetObs canary_obs(nullptr, canary_cfg);
    ocfg.fleet_obs = &canary_obs;
    std::printf("\nrunning SLO canary (1 shard, 1 thread, %d players)...\n",
                ocfg.players);
    std::fflush(stdout);
    const auto overload = harness::run_shard_experiment(ocfg);
    out.add_raw("slo", slo_point_json("overload-canary", overload));
    bool caught = false;
    for (const obs::SloBreach& b : overload.slo_breaches)
      if (b.slo == "frame_p99") caught = true;
    if (!caught)
      fail("FAIL: SLO monitor missed the injected frame-budget breach "
           "(%zu breaches recorded)\n",
           overload.slo_breaches.size());
    else
      std::printf(
          "SLO canary: frame-p99 breach detected as expected (%.3f ms "
          "observed vs 12.5 ms budget)\n",
          overload.slo_breaches.front().observed);
  }

  // ---- --trace: merged multi-shard causal trace ----------------------
  // A third run with handoffs enabled (default boundary margin, so bots
  // roaming across slab boundaries migrate between engines) and shard 1
  // crashed mid-measure. The export holds every shard as its own Chrome
  // process, flow arrows stitching each migration, and the supervisor's
  // quarantine -> restore instants on shard 1's track.
  if (!out.options().trace_path.empty()) {
    auto tcfg = fleet_config();
    tcfg.fleet.boundary_margin = 24.0f;  // re-enable cross-shard handoff
    tcfg.warmup = vt::seconds(1);
    tcfg.measure = vt::seconds(3);
    const vt::Duration tcrash = tcfg.warmup + vt::Duration{tcfg.measure.ns / 2};
    tcfg.schedule_faults = [tcrash](vt::Platform& p,
                                    shard::ShardManager& mgr) {
      p.call_after(tcrash, [&mgr] { mgr.crash_shard(1); });
    };
    obs::Tracer tracer;  // bound to the run's platform by FleetObs::attach
    obs::FleetObs trace_obs(&tracer, obs_cfg);
    tcfg.fleet_obs = &trace_obs;
    std::printf("\ncapturing merged fleet trace (handoffs on, shard 1 "
                "crashed at t=%.1fs)...\n",
                static_cast<double>(tcrash.ns) / 1e9);
    std::fflush(stdout);
    const auto traced = harness::run_shard_experiment(tcfg);
    if (traced.handoff_flows == 0)
      fail("FAIL: trace run produced no session-handoff flows\n");
    if (traced.shards[1].restores != 1)
      fail("FAIL: trace run's crashed shard was not restored (restores=%d)\n",
           traced.shards[1].restores);
    if (tracer.write_chrome_trace(out.options().trace_path)) {
      std::printf(
          "wrote %llu spans across %d tracks (%d shard processes) with "
          "%" PRIu64
          " handoff flows to %s\n  (open in chrome://tracing or "
          "https://ui.perfetto.dev — shard 1's supervisor track carries "
          "the quarantine/restore instants)\n",
          static_cast<unsigned long long>(tracer.total_recorded()),
          tracer.track_count(), kShards, traced.handoff_flows,
          out.options().trace_path.c_str());
    } else {
      fail("FAIL: could not write trace to %s\n",
           out.options().trace_path.c_str());
    }
  }

  const int rc = out.finish();
  return failed ? 1 : rc;
}
