// Observability overhead: what does the event tracer cost?
//
// Two measurements:
//  1. Micro: host-clock cost of one TraceScope span — tracer absent
//     (null pointer), present-but-disabled (the one-branch hot path),
//     and enabled (timestamping + a ring-slot store).
//  2. Macro: a full 4-thread/128-player experiment with observability off
//     vs fully on (tracer + metrics registry). Because tracing charges no
//     modelled compute, the virtual-time results must be bit-identical;
//     the honest cost is host wall time, reported as a ratio.
//
// The acceptance bar: enabled tracing under ~5% host overhead on the
// macro run, disabled tracing indistinguishable from no tracer at all.
#include <chrono>
#include <cinttypes>

#include "bench_common.hpp"
#include "src/obs/metrics.hpp"
#include "src/vthread/sim_platform.hpp"

using namespace qserv;
using namespace qserv::harness;

namespace {

volatile uint64_t g_sink = 0;

// Cost per iteration (host ns) of `body` over `iters` runs.
template <typename F>
double time_per_iter_ns(uint64_t iters, F&& body) {
  const auto t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < iters; ++i) body();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(iters);
}

double min_host_seconds(const ExperimentConfig& cfg, int reps) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    const double s = run_experiment(cfg).host_seconds;
    if (i == 0 || s < best) best = s;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOutput out("obs_overhead", argc, argv);
  bench::print_header("Observability overhead — event tracer cost on/off",
                      "measurement-methodology validation (§4)");

  // ---- 1. Micro: per-span cost --------------------------------------
  vt::SimPlatform platform;
  obs::Tracer tracer(platform);
  const int track = tracer.make_track("micro");
  constexpr uint64_t kIters = 1 << 21;

  const double base_ns = time_per_iter_ns(kIters, [] { g_sink = g_sink + 1; });
  const double null_ns = time_per_iter_ns(kIters, [&] {
    obs::TraceScope s(nullptr, 0, "span");
    g_sink = g_sink + 1;
  });
  tracer.set_enabled(false);
  const double off_ns = time_per_iter_ns(kIters, [&] {
    obs::TraceScope s(&tracer, track, "span");
    g_sink = g_sink + 1;
  });
  tracer.set_enabled(true);
  const double on_ns = time_per_iter_ns(kIters, [&] {
    obs::TraceScope s(&tracer, track, "span");
    g_sink = g_sink + 1;
  });

  Table micro("Per-span cost (host ns, loop baseline subtracted)");
  micro.header({"case", "ns/span"});
  micro.row({"no tracer (null)", Table::num(null_ns - base_ns, 1)});
  micro.row({"tracer disabled", Table::num(off_ns - base_ns, 1)});
  micro.row({"tracer enabled", Table::num(on_ns - base_ns, 1)});
  micro.print();
  std::printf("(%" PRIu64 " spans recorded into the micro ring)\n\n",
              tracer.total_recorded());

  // ---- 2. Macro: full experiment off vs on --------------------------
  auto cfg = paper_config(ServerMode::kParallel, 4, 128,
                          core::LockPolicy::kConservative);
  bench::apply_windows(cfg);
  const int reps = 2;

  const double off_s = min_host_seconds(cfg, reps);
  const auto r_off = run_experiment(cfg);

  ExperimentConfig traced = cfg;
  obs::Tracer run_tracer;  // bound inside run_experiment
  obs::MetricsRegistry metrics;
  traced.tracer = &run_tracer;
  traced.metrics = &metrics;
  traced.metrics_period = vt::seconds(1);
  const double on_s = min_host_seconds(traced, reps);
  const auto r_on = run_experiment(traced);

  out.add("macro", "obs-off", cfg, r_off);
  out.add("macro", "obs-on", traced, r_on);

  // Game-visible outputs must match exactly. (sim_events is excluded: the
  // periodic metrics snapshot adds scheduler events, which charge no
  // modelled compute and leave every simulation result untouched.)
  const bool identical = r_off.frames == r_on.frames &&
                         r_off.replies == r_on.replies &&
                         r_off.requests == r_on.requests &&
                         r_off.response_rate == r_on.response_rate &&
                         r_off.response_ms_mean == r_on.response_ms_mean;
  const double overhead = off_s > 0 ? on_s / off_s - 1.0 : 0.0;

  Table macro("Full experiment, 4 threads / 128 players");
  macro.header({"observability", "host s (best of reps)", "frames",
                "replies/s", "spans", "metrics"});
  macro.row({"off", Table::num(off_s, 2), std::to_string(r_off.frames),
             Table::num(r_off.response_rate, 0), "--", "--"});
  macro.row({"tracer + metrics", Table::num(on_s, 2),
             std::to_string(r_on.frames), Table::num(r_on.response_rate, 0),
             std::to_string(run_tracer.total_recorded()),
             std::to_string(metrics.size())});
  std::printf("\n");
  macro.print();

  std::printf("\nvirtual-time results identical on/off: %s\n",
              identical ? "yes" : "NO — tracer perturbed the simulation!");
  std::printf("host overhead with full observability: %+.1f%% %s\n", overhead * 100,
              overhead < 0.05 ? "(within the 5% budget)"
                              : "(OVER the 5% budget)");

  {
    std::string point;
    obs::JsonWriter w(point);
    w.begin_object();
    w.kv("label", "tracer-cost");
    w.kv("span_ns_null", null_ns - base_ns);
    w.kv("span_ns_disabled", off_ns - base_ns);
    w.kv("span_ns_enabled", on_ns - base_ns);
    w.kv("macro_host_s_off", off_s);
    w.kv("macro_host_s_on", on_s);
    w.kv("macro_overhead", overhead);
    w.kv("virtual_time_identical", identical);
    w.end_object();
    out.add_raw("micro", std::move(point));
  }

  out.capture_trace(cfg);
  if (!identical) return 1;
  return out.finish();
}
