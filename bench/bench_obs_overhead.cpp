// Observability overhead: what does the event tracer cost?
//
// Two measurements:
//  1. Micro: host-clock cost of one TraceScope span — tracer absent
//     (null pointer), present-but-disabled (the one-branch hot path),
//     and enabled (timestamping + a ring-slot store).
//  2. Macro: a full 4-thread/128-player experiment with observability off
//     vs fully on (tracer + metrics registry). Because tracing charges no
//     modelled compute, the virtual-time results must be bit-identical;
//     the honest cost is host wall time, reported as a ratio.
//
//  3. Fleet: a 4-shard failover-shaped fleet with the observability
//     plane absent vs fully attached (FleetObs: tracer, per-shard
//     metrics federation, SLO windows every 500 ms). Same bar: the
//     virtual-time results must be bit-identical, the honest cost is
//     host wall time.
//
// The acceptance bar: enabled tracing under ~5% host overhead on the
// macro run, disabled tracing indistinguishable from no tracer at all,
// and span costs inside the envelope measured when the tracer landed
// (~0.3 ns disabled / ~6.5 ns enabled; gated with generous caps so a
// loaded CI box does not flake).
#include <chrono>
#include <cinttypes>

#include "bench_common.hpp"
#include "src/harness/shard_experiment.hpp"
#include "src/obs/fleet.hpp"
#include "src/obs/metrics.hpp"
#include "src/vthread/sim_platform.hpp"

using namespace qserv;
using namespace qserv::harness;

namespace {

volatile uint64_t g_sink = 0;

// Cost per iteration (host ns) of `body` over `iters` runs.
template <typename F>
double time_per_iter_ns(uint64_t iters, F&& body) {
  const auto t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < iters; ++i) body();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(iters);
}

double min_host_seconds(const ExperimentConfig& cfg, int reps) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    const double s = run_experiment(cfg).host_seconds;
    if (i == 0 || s < best) best = s;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOutput out("obs_overhead", argc, argv);
  bench::print_header("Observability overhead — event tracer cost on/off",
                      "measurement-methodology validation (§4)");

  // ---- 1. Micro: per-span cost --------------------------------------
  vt::SimPlatform platform;
  obs::Tracer tracer(platform);
  const int track = tracer.make_track("micro");
  constexpr uint64_t kIters = 1 << 21;

  const double base_ns = time_per_iter_ns(kIters, [] { g_sink = g_sink + 1; });
  const double null_ns = time_per_iter_ns(kIters, [&] {
    obs::TraceScope s(nullptr, 0, "span");
    g_sink = g_sink + 1;
  });
  tracer.set_enabled(false);
  const double off_ns = time_per_iter_ns(kIters, [&] {
    obs::TraceScope s(&tracer, track, "span");
    g_sink = g_sink + 1;
  });
  tracer.set_enabled(true);
  const double on_ns = time_per_iter_ns(kIters, [&] {
    obs::TraceScope s(&tracer, track, "span");
    g_sink = g_sink + 1;
  });

  Table micro("Per-span cost (host ns, loop baseline subtracted)");
  micro.header({"case", "ns/span"});
  micro.row({"no tracer (null)", Table::num(null_ns - base_ns, 1)});
  micro.row({"tracer disabled", Table::num(off_ns - base_ns, 1)});
  micro.row({"tracer enabled", Table::num(on_ns - base_ns, 1)});
  micro.print();
  std::printf("(%" PRIu64 " spans recorded into the micro ring)\n\n",
              tracer.total_recorded());

  // ---- 2. Macro: full experiment off vs on --------------------------
  auto cfg = paper_config(ServerMode::kParallel, 4, 128,
                          core::LockPolicy::kConservative);
  bench::apply_windows(cfg);
  const int reps = 2;

  const double off_s = min_host_seconds(cfg, reps);
  const auto r_off = run_experiment(cfg);

  ExperimentConfig traced = cfg;
  obs::Tracer run_tracer;  // bound inside run_experiment
  obs::MetricsRegistry metrics;
  traced.tracer = &run_tracer;
  traced.metrics = &metrics;
  traced.metrics_period = vt::seconds(1);
  const double on_s = min_host_seconds(traced, reps);
  const auto r_on = run_experiment(traced);

  out.add("macro", "obs-off", cfg, r_off);
  out.add("macro", "obs-on", traced, r_on);

  // Game-visible outputs must match exactly. (sim_events is excluded: the
  // periodic metrics snapshot adds scheduler events, which charge no
  // modelled compute and leave every simulation result untouched.)
  const bool identical = r_off.frames == r_on.frames &&
                         r_off.replies == r_on.replies &&
                         r_off.requests == r_on.requests &&
                         r_off.response_rate == r_on.response_rate &&
                         r_off.response_ms_mean == r_on.response_ms_mean;
  const double overhead = off_s > 0 ? on_s / off_s - 1.0 : 0.0;

  Table macro("Full experiment, 4 threads / 128 players");
  macro.header({"observability", "host s (best of reps)", "frames",
                "replies/s", "spans", "metrics"});
  macro.row({"off", Table::num(off_s, 2), std::to_string(r_off.frames),
             Table::num(r_off.response_rate, 0), "--", "--"});
  macro.row({"tracer + metrics", Table::num(on_s, 2),
             std::to_string(r_on.frames), Table::num(r_on.response_rate, 0),
             std::to_string(run_tracer.total_recorded()),
             std::to_string(metrics.size())});
  std::printf("\n");
  macro.print();

  std::printf("\nvirtual-time results identical on/off: %s\n",
              identical ? "yes" : "NO — tracer perturbed the simulation!");
  std::printf("host overhead with full observability: %+.1f%% %s\n", overhead * 100,
              overhead < 0.05 ? "(within the 5% budget)"
                              : "(OVER the 5% budget)");

  {
    std::string point;
    obs::JsonWriter w(point);
    w.begin_object();
    w.kv("label", "tracer-cost");
    w.kv("span_ns_null", null_ns - base_ns);
    w.kv("span_ns_disabled", off_ns - base_ns);
    w.kv("span_ns_enabled", on_ns - base_ns);
    w.kv("macro_host_s_off", off_s);
    w.kv("macro_host_s_on", on_s);
    w.kv("macro_overhead", overhead);
    w.kv("virtual_time_identical", identical);
    w.end_object();
    out.add_raw("micro", std::move(point));
  }

  // ---- 3. Fleet: 4-shard macro, plane off vs on ---------------------
  auto fleet_cfg = [] {
    harness::ShardExperimentConfig c;
    c.fleet.shards = 4;
    c.fleet.server.threads = 4;
    c.fleet.server.lock_policy = core::LockPolicy::kConservative;
    c.players = 4 * 128;
    c.warmup = vt::seconds_d(bench::env_seconds("QSERV_WARMUP_SECONDS", 2.0));
    c.measure = vt::seconds_d(bench::env_seconds("QSERV_MEASURE_SECONDS", 8.0));
    c.seed = 7;
    c.machine.cores = 16;
    c.machine.ht_per_core = 2;
    return c;
  };

  auto fleet_off_cfg = fleet_cfg();
  const auto f_off = harness::run_shard_experiment(fleet_off_cfg);

  auto fleet_on_cfg = fleet_cfg();
  obs::Tracer fleet_tracer;  // bound by FleetObs::attach
  obs::FleetObs::Config fleet_obs_cfg;
  fleet_obs_cfg.expected_clients = fleet_on_cfg.players;
  obs::FleetObs fleet_obs(&fleet_tracer, fleet_obs_cfg);
  fleet_on_cfg.fleet_obs = &fleet_obs;
  const auto f_on = harness::run_shard_experiment(fleet_on_cfg);

  // The plane (tracer spans, flow stitching, metrics, SLO windows)
  // charges no modelled compute, so every game-visible output — per-shard
  // frame counts included — must be bit-identical with it attached.
  bool fleet_identical = f_off.connected == f_on.connected &&
                         f_off.client_replies == f_on.client_replies &&
                         f_off.response_rate == f_on.response_rate &&
                         f_off.handoffs_out == f_on.handoffs_out;
  for (size_t i = 0; i < f_off.shards.size(); ++i)
    fleet_identical = fleet_identical &&
                      f_off.shards[i].frames == f_on.shards[i].frames;
  const double fleet_overhead =
      f_off.host_seconds > 0 ? f_on.host_seconds / f_off.host_seconds - 1.0
                             : 0.0;

  Table fleet("4-shard fleet (4x4 threads, 512 players)");
  fleet.header({"observability", "host s", "replies/s", "handoffs", "spans",
                "slo windows"});
  fleet.row({"off", Table::num(f_off.host_seconds, 2),
             Table::num(f_off.response_rate, 0),
             std::to_string(f_off.handoffs_out), "--", "--"});
  fleet.row({"fleet plane", Table::num(f_on.host_seconds, 2),
             Table::num(f_on.response_rate, 0),
             std::to_string(f_on.handoffs_out),
             std::to_string(fleet_tracer.total_recorded()),
             std::to_string(f_on.slo_evaluations)});
  std::printf("\n");
  fleet.print();
  std::printf("\nfleet virtual-time results identical on/off: %s\n",
              fleet_identical ? "yes"
                              : "NO — the plane perturbed the simulation!");
  std::printf("fleet host overhead with the full plane: %+.1f%%\n",
              fleet_overhead * 100);

  {
    std::string point;
    obs::JsonWriter w(point);
    w.begin_object();
    w.kv("label", "fleet-plane");
    w.kv("host_s_off", f_off.host_seconds);
    w.kv("host_s_on", f_on.host_seconds);
    w.kv("overhead", fleet_overhead);
    w.kv("spans", fleet_tracer.total_recorded());
    w.kv("handoff_flows", f_on.handoff_flows);
    w.kv("slo_evaluations", f_on.slo_evaluations);
    w.kv("virtual_time_identical", fleet_identical);
    w.end_object();
    out.add_raw("fleet", std::move(point));
  }

  out.capture_trace(cfg);

  // Envelope guards. The identity checks are exact; the span-cost caps
  // are an order of magnitude above the measured envelope, catching a
  // hot-path pessimization without flaking on machine noise.
  bool guards_ok = true;
  if (!identical || !fleet_identical) guards_ok = false;
  if (off_ns - base_ns > 5.0) {
    std::fprintf(stderr,
                 "FAIL: disabled-tracer span cost %.1f ns/span breaches the "
                 "5 ns cap (envelope ~0.3 ns)\n",
                 off_ns - base_ns);
    guards_ok = false;
  }
  if (on_ns - base_ns > 60.0) {
    std::fprintf(stderr,
                 "FAIL: enabled-tracer span cost %.1f ns/span breaches the "
                 "60 ns cap (envelope ~6.5 ns)\n",
                 on_ns - base_ns);
    guards_ok = false;
  }
  if (!guards_ok) return 1;
  return out.finish();
}
