// Shared helpers for the figure benches: measurement-window defaults
// (overridable via QSERV_MEASURE_SECONDS / QSERV_WARMUP_SECONDS for
// longer, paper-length runs) and common formatting.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/harness/experiment.hpp"
#include "src/harness/report.hpp"
#include "src/harness/sweep.hpp"
#include "src/util/table.hpp"

namespace qserv::bench {

inline double env_seconds(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const double parsed = std::atof(v);
  return parsed > 0.0 ? parsed : fallback;
}

// Applies the standard measurement windows. The paper ran 2-minute
// experiments; 8 simulated seconds after a 2-second warmup is enough for
// stable rates here (verified against 60 s runs), and can be raised via
// the environment.
inline void apply_windows(harness::ExperimentConfig& cfg) {
  cfg.warmup = vt::seconds_d(env_seconds("QSERV_WARMUP_SECONDS", 2.0));
  cfg.measure = vt::seconds_d(env_seconds("QSERV_MEASURE_SECONDS", 8.0));
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("================================================================\n\n");
  std::fflush(stdout);
}

}  // namespace qserv::bench
