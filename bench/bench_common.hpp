// Shared helpers for the figure benches: measurement-window defaults
// (overridable via QSERV_MEASURE_SECONDS / QSERV_WARMUP_SECONDS for
// longer, paper-length runs), common formatting, and the standard CLI
// every bench binary supports (parse_args — unknown flags are a hard
// error):
//   --json <path>      results as "qserv-bench-v1" JSON (harness/json_export)
//   --trace <path>     Chrome trace-event JSON of a representative config,
//                      viewable in chrome://tracing or https://ui.perfetto.dev
//   --measure <secs>   measurement window (sets QSERV_MEASURE_SECONDS)
//   --warmup <secs>    warmup window (sets QSERV_WARMUP_SECONDS)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/harness/experiment.hpp"
#include "src/harness/json_export.hpp"
#include "src/harness/report.hpp"
#include "src/harness/sweep.hpp"
#include "src/obs/trace.hpp"
#include "src/util/table.hpp"

namespace qserv::bench {

inline double env_seconds(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const double parsed = std::atof(v);
  return parsed > 0.0 ? parsed : fallback;
}

// Applies the standard measurement windows. The paper ran 2-minute
// experiments; 8 simulated seconds after a 2-second warmup is enough for
// stable rates here (verified against 60 s runs), and can be raised via
// the environment.
inline void apply_windows(harness::ExperimentConfig& cfg) {
  cfg.warmup = vt::seconds_d(env_seconds("QSERV_WARMUP_SECONDS", 2.0));
  cfg.measure = vt::seconds_d(env_seconds("QSERV_MEASURE_SECONDS", 8.0));
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("================================================================\n\n");
  std::fflush(stdout);
}

struct Options {
  std::string json_path;
  std::string trace_path;
};

// The one CLI parser every bench main goes through (directly or via
// BenchOutput). Unknown flags are a hard error: a typoed flag must not
// silently run the default configuration for ten minutes. --measure and
// --warmup land in the QSERV_* environment variables so apply_windows()
// (and any subprocess the bench spawns) picks them up uniformly.
inline Options parse_args(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value_arg = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires an argument\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    auto seconds_arg = [&](const char* flag, const char* env) {
      const char* v = value_arg(flag);
      if (std::atof(v) <= 0.0) {
        std::fprintf(stderr, "%s requires a positive seconds value\n", flag);
        std::exit(2);
      }
      setenv(env, v, /*overwrite=*/1);
    };
    if (a == "--json") {
      o.json_path = value_arg("--json");
    } else if (a == "--trace") {
      o.trace_path = value_arg("--trace");
    } else if (a == "--measure") {
      seconds_arg("--measure", "QSERV_MEASURE_SECONDS");
    } else if (a == "--warmup") {
      seconds_arg("--warmup", "QSERV_WARMUP_SECONDS");
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "usage: %s [--json <path>] [--trace <path>] [--measure <secs>] "
          "[--warmup <secs>]\n",
          argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n", a.c_str());
      std::exit(2);
    }
  }
  return o;
}

// Per-bench output sink. Results added during the run are written as
// qserv-bench-v1 JSON at finish() when --json was given; capture_trace()
// re-runs one representative configuration with the event tracer attached
// and writes Chrome trace JSON when --trace was given.
class BenchOutput {
 public:
  BenchOutput(const char* bench_name, int argc, char** argv)
      : opts_(parse_args(argc, argv)), json_(bench_name) {}

  const Options& options() const { return opts_; }

  void add(const std::string& group, const std::string& label,
           const harness::ExperimentConfig& cfg,
           const harness::ExperimentResult& r) {
    if (!opts_.json_path.empty()) json_.add(group, label, cfg, r);
  }
  void add_points(const std::string& group,
                  const std::vector<harness::SweepPoint>& points) {
    if (!opts_.json_path.empty()) json_.add_points(group, points);
  }
  void add_raw(const std::string& group, std::string point_json) {
    if (!opts_.json_path.empty()) json_.add_raw(group, std::move(point_json));
  }

  // Re-runs `cfg` with tracing on and exports the timeline. Windows are
  // shortened — a trace only needs a few hundred frames to be useful, and
  // the ring would hold just the tail of a long run anyway.
  void capture_trace(harness::ExperimentConfig cfg) {
    if (opts_.trace_path.empty()) return;
    cfg.warmup = vt::seconds(1);
    cfg.measure = vt::seconds(2);
    obs::Tracer tracer;  // bound to the run's platform on attach
    cfg.tracer = &tracer;
    std::printf("\ncapturing trace...\n");
    std::fflush(stdout);
    harness::run_experiment(cfg);
    if (tracer.write_chrome_trace(opts_.trace_path)) {
      std::printf(
          "wrote %llu spans across %d threads to %s "
          "(open in chrome://tracing or https://ui.perfetto.dev)\n",
          static_cast<unsigned long long>(tracer.total_recorded()),
          tracer.track_count(), opts_.trace_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   opts_.trace_path.c_str());
      failed_ = true;
    }
    std::fflush(stdout);
  }

  // Writes --json output if requested; returns main()'s exit code.
  int finish() {
    if (!opts_.json_path.empty()) {
      if (json_.write(opts_.json_path)) {
        std::printf("wrote results JSON to %s\n", opts_.json_path.c_str());
        std::fflush(stdout);
      } else {
        failed_ = true;
      }
    }
    return failed_ ? 1 : 0;
  }

 private:
  Options opts_;
  harness::BenchJsonWriter json_;
  bool failed_ = false;
};

}  // namespace qserv::bench
