// Ablation (ours): how much of the "8 threads barely beats 4" result is
// the hyper-threaded machine? We re-run the 8-thread server on machine
// models the paper did not have: no HT benefit at all, the modelled 1.25x
// HT, and a hypothetical true 8-core SMP.
#include "bench_common.hpp"

using namespace qserv;
using namespace qserv::harness;

int main(int argc, char** argv) {
  bench::BenchOutput out("ablation_machine", argc, argv);
  bench::print_header("Ablation — machine model under the 8-thread server (256 players)",
                      "extends §4.2's hyper-threading discussion");

  struct Machine {
    const char* name;
    int cores;
    int ht;
    double tp;
  };
  const Machine machines[] = {
      {"4 cores, HT off (4c x 1)", 4, 1, 1.0},
      {"4 cores x 2 HT, 1.0x (HT useless)", 4, 2, 1.0},
      {"4 cores x 2 HT, 1.25x (paper model)", 4, 2, 1.25},
      {"8 true cores", 8, 1, 1.0},
  };

  Table t("8 threads, 256 players, conservative locking");
  t.header({"machine", "rate (replies/s)", "resp (ms)", "lock", "wait",
            "idle"});
  for (const auto& m : machines) {
    auto cfg = paper_config(ServerMode::kParallel, 8, 256,
                            core::LockPolicy::kConservative);
    cfg.machine.cores = m.cores;
    cfg.machine.ht_per_core = m.ht;
    cfg.machine.ht_throughput = m.tp;
    bench::apply_windows(cfg);
    const auto r = run_experiment(cfg);
    print_summary(m.name, r);
    out.add("machine", m.name, cfg, r);
    t.row({m.name, Table::num(r.response_rate, 0),
           Table::num(r.response_ms_mean, 1), Table::pct(r.pct.lock()),
           Table::pct(r.pct.intra_wait + r.pct.inter_wait()),
           Table::pct(r.pct.idle)});
  }
  std::printf("\n");
  t.print();

  auto trace_cfg = paper_config(ServerMode::kParallel, 8, 256,
                                core::LockPolicy::kConservative);
  trace_cfg.machine.cores = 8;
  trace_cfg.machine.ht_per_core = 1;
  trace_cfg.machine.ht_throughput = 1.0;
  out.capture_trace(trace_cfg);
  return out.finish();
}
