// §5.2: wait-time analysis.
//  * Requests per thread per frame at 128 players (paper: 4 / 2.5 / 1.5
//    for 2/4/8 threads).
//  * Dynamic imbalance for the 2-thread 128-player configuration: per
//    frame, the difference in requests serviced between the two threads
//    (paper: one thread services 3.3 more on average, stddev 2.5).
//  * Inter-frame wait decomposition: waiting for the world update vs
//    waiting for the previous frame to complete (paper: 25% / 75%).
#include <algorithm>
#include <map>

#include "bench_common.hpp"

using namespace qserv;
using namespace qserv::harness;

int main(int argc, char** argv) {
  bench::BenchOutput out("sec52_wait_analysis", argc, argv);
  bench::print_header("§5.2 — wait time analysis", "§5.2 text");

  Table rpf("Requests per thread per frame at 128 players");
  rpf.header({"threads", "mean req/thread/frame", "stddev",
              "inter-wait on world", "inter-wait on frame end"});
  std::vector<ExperimentResult> results;
  for (const int t : {2, 4, 8}) {
    auto cfg = paper_config(ServerMode::kParallel, t, 128,
                            core::LockPolicy::kConservative);
    cfg.frame_trace = true;
    bench::apply_windows(cfg);
    const auto r = run_experiment(cfg);
    print_summary(std::to_string(t) + "t/128p", r);
    out.add("wait_analysis", std::to_string(t) + "t/128p", cfg, r);
    rpf.row({std::to_string(t),
             Table::num(r.requests_per_thread_frame_mean, 2),
             Table::num(r.requests_per_thread_frame_stddev, 2),
             Table::pct(r.inter_wait_world_fraction),
             Table::pct(1.0 - r.inter_wait_world_fraction)});
    results.push_back(r);
  }
  std::printf("\n");
  rpf.print();

  // Dynamic per-frame imbalance between the two threads of the 2-thread
  // configuration (paper measured the first fifty multi-threaded frames;
  // we use every frame both threads participated in).
  const auto& traces = results[0].frame_traces;
  if (traces.size() == 2) {
    std::map<uint64_t, std::pair<int, int>> frames;  // frame -> (t0, t1)
    std::map<uint64_t, int> seen;
    for (const auto& [f, n] : traces[0]) {
      frames[f].first = n;
      seen[f] |= 1;
    }
    for (const auto& [f, n] : traces[1]) {
      frames[f].second = n;
      seen[f] |= 2;
    }
    StatAccumulator diff;
    for (const auto& [f, pair] : frames) {
      if (seen[f] != 3) continue;  // only frames both threads joined
      diff.add(std::abs(pair.first - pair.second));
    }
    Table imb("2-thread/128p dynamic imbalance (|req(t0) - req(t1)| per frame)");
    imb.header({"multi-thread frames", "mean difference", "stddev"});
    imb.row({std::to_string(diff.count()), Table::num(diff.mean(), 2),
             Table::num(diff.stddev(), 2)});
    std::printf("\n");
    imb.print();
    std::printf(
        "(paper: one thread services 3.3 more requests on average, "
        "stddev 2.5)\n");
  }

  // Wait composition across the full breakdown.
  Table waits("Wait components (% of total thread time), 128 players");
  waits.header({"threads", "intra-frame", "inter-frame (world)",
                "inter-frame (prior frame)", "total wait"});
  const std::vector<int> ts{2, 4, 8};
  for (size_t i = 0; i < results.size(); ++i) {
    const auto& p = results[i].pct;
    waits.row({std::to_string(ts[i]), Table::pct(p.intra_wait),
               Table::pct(p.inter_wait_world),
               Table::pct(p.inter_wait_frame),
               Table::pct(p.intra_wait + p.inter_wait())});
  }
  std::printf("\n");
  waits.print();

  out.capture_trace(paper_config(ServerMode::kParallel, 2, 128,
                                 core::LockPolicy::kConservative));
  return out.finish();
}
