// Microbenchmarks: lock-manager policy costs (host-time of simulated
// acquire/release cycles, plus virtual-time contention read-outs).
#include <benchmark/benchmark.h>

#include "src/core/lock_manager.hpp"
#include "src/net/protocol.hpp"
#include "src/util/rng.hpp"
#include "src/vthread/sim_platform.hpp"

namespace qserv::core {
namespace {

const Aabb kWorld{{-1024, -1024, 0}, {1024, 1024, 256}};

sim::Entity player_at(const Vec3& origin) {
  sim::Entity e;
  e.id = 1;
  e.type = sim::EntityType::kPlayer;
  e.origin = origin;
  e.mins = sim::kPlayerMins;
  e.maxs = sim::kPlayerMaxs;
  e.health = 100;
  return e;
}

void BM_PlanRequest(benchmark::State& state) {
  const auto policy = static_cast<LockPolicy>(state.range(0));
  vt::SimPlatform p;
  spatial::AreanodeTree tree(kWorld, 4);
  LockManager lm(p, tree, sim::CostModel{});
  Rng rng(1);
  net::MoveCmd cmd;
  cmd.buttons = net::kButtonAttack;
  std::vector<std::vector<int>> sets;
  std::vector<sim::Entity> players;
  for (int i = 0; i < 256; ++i)
    players.push_back(player_at(rng.point_in(kWorld.mins, kWorld.maxs)));
  size_t i = 0;
  for (auto _ : state) {
    lm.plan_request(policy, players[i++ & 255], cmd, sets);
    benchmark::DoNotOptimize(sets.size());
  }
}
BENCHMARK(BM_PlanRequest)
    ->Arg(static_cast<int>(LockPolicy::kConservative))
    ->Arg(static_cast<int>(LockPolicy::kOptimized));

void BM_AcquireReleaseUncontended(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    vt::SimPlatform p;
    spatial::AreanodeTree tree(kWorld, 4);
    sim::CostModel free_costs;
    free_costs.lock_op = {};
    LockManager lm(p, tree, free_costs);
    state.ResumeTiming();
    p.spawn("t", vt::Domain::kServer, [&] {
      ThreadStats st;
      for (int i = 0; i < 2000; ++i) {
        LockManager::Region r;
        lm.acquire({{15, 16, 17}}, 0, st, r);
        lm.release(r);
      }
    });
    p.run();
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_AcquireReleaseUncontended)->Unit(benchmark::kMillisecond);

void BM_ContendedRegions(benchmark::State& state) {
  // Host cost of a heavily contended simulated workload; also reports the
  // virtual-time contention it produced.
  const int threads = static_cast<int>(state.range(0));
  double wait_share = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    vt::SimPlatform p;
    spatial::AreanodeTree tree(kWorld, 4);
    LockManager lm(p, tree, sim::CostModel{});
    std::vector<ThreadStats> st(static_cast<size_t>(threads));
    state.ResumeTiming();
    for (int t = 0; t < threads; ++t) {
      p.spawn("t" + std::to_string(t), vt::Domain::kServer, [&, t] {
        Rng rng(static_cast<uint64_t>(t) + 1);
        for (int i = 0; i < 500; ++i) {
          std::vector<int> leaves;
          const int base = 15 + static_cast<int>(rng.below(12));
          for (int k = 0; k < 4; ++k) leaves.push_back(base + k);
          LockManager::Region r;
          lm.acquire({leaves}, t, st[static_cast<size_t>(t)], r);
          p.compute(vt::micros(50));
          lm.release(r);
        }
      });
    }
    p.run();
    vt::Duration wait{}, total{};
    for (const auto& s : st) wait += s.breakdown.lock_leaf;
    total = vt::Duration{p.now().ns * threads};
    wait_share = total.ns ? static_cast<double>(wait.ns) /
                                static_cast<double>(total.ns)
                          : 0.0;
  }
  state.counters["vt_lock_share"] = wait_share;
  state.SetItemsProcessed(state.iterations() * 500 * threads);
}
BENCHMARK(BM_ContendedRegions)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace qserv::core
