// Microbenchmarks: collision world traces and queries (host-time).
#include <benchmark/benchmark.h>

#include "src/spatial/collision.hpp"
#include "src/spatial/map_gen.hpp"
#include "src/util/rng.hpp"

namespace qserv::spatial {
namespace {

void BM_BuildCollision(benchmark::State& state) {
  const GameMap map = make_large_deathmatch(7);
  for (auto _ : state) {
    CollisionWorld w(map.brushes);
    benchmark::DoNotOptimize(w.brush_count());
  }
}
BENCHMARK(BM_BuildCollision);

void BM_TraceLine(benchmark::State& state) {
  const GameMap map = make_large_deathmatch(7);
  const CollisionWorld w = map.build_collision();
  Rng rng(1);
  std::vector<std::pair<Vec3, Vec3>> rays;
  for (int i = 0; i < 512; ++i) {
    rays.emplace_back(rng.point_in(map.bounds.mins, map.bounds.maxs),
                      rng.point_in(map.bounds.mins, map.bounds.maxs));
  }
  size_t i = 0;
  int64_t brushes = 0;
  for (auto _ : state) {
    const auto& [a, b] = rays[i++ & 511];
    const auto tr = w.trace_line(a, b);
    brushes += tr.brushes_tested;
    benchmark::DoNotOptimize(tr.fraction);
  }
  state.counters["brushes/trace"] =
      benchmark::Counter(static_cast<double>(brushes),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_TraceLine);

void BM_TraceBoxShort(benchmark::State& state) {
  // The slide-move case: short player-box traces.
  const GameMap map = make_large_deathmatch(7);
  const CollisionWorld w = map.build_collision();
  Rng rng(2);
  std::vector<Vec3> starts;
  for (int i = 0; i < 512; ++i)
    starts.push_back(rng.point_in(map.bounds.mins + Vec3{50, 50, 30},
                                  map.bounds.maxs - Vec3{50, 50, 100}));
  size_t i = 0;
  for (auto _ : state) {
    const Vec3& s = starts[i++ & 511];
    const auto tr = w.trace_box(s, s + Vec3{9.6f, 4.0f, 0.0f},
                                {-16, -16, -24}, {16, 16, 32});
    benchmark::DoNotOptimize(tr.fraction);
  }
}
BENCHMARK(BM_TraceBoxShort);

void BM_PointSolid(benchmark::State& state) {
  const GameMap map = make_large_deathmatch(7);
  const CollisionWorld w = map.build_collision();
  Rng rng(3);
  std::vector<Vec3> points;
  for (int i = 0; i < 512; ++i)
    points.push_back(rng.point_in(map.bounds.mins, map.bounds.maxs));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.point_solid(points[i++ & 511]));
  }
}
BENCHMARK(BM_PointSolid);

void BM_Query(benchmark::State& state) {
  const GameMap map = make_large_deathmatch(7);
  const CollisionWorld w = map.build_collision();
  Rng rng(4);
  std::vector<uint32_t> out;
  std::vector<Aabb> boxes;
  for (int i = 0; i < 512; ++i) {
    const Vec3 c = rng.point_in(map.bounds.mins, map.bounds.maxs);
    const float h = rng.uniform(20.0f, 300.0f);
    boxes.push_back(Aabb{c, c}.expanded(h));
  }
  size_t i = 0;
  for (auto _ : state) {
    out.clear();
    w.query(boxes[i++ & 511], out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_Query);

}  // namespace
}  // namespace qserv::spatial
