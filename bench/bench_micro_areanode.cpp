// Microbenchmarks: areanode tree operations (host-time, google-benchmark).
#include <benchmark/benchmark.h>

#include "src/spatial/areanode_tree.hpp"
#include "src/util/rng.hpp"

namespace qserv::spatial {
namespace {

const Aabb kWorld{{-1024, -1024, 0}, {1024, 1024, 256}};

Aabb random_box(Rng& rng, float max_half) {
  const Vec3 c = rng.point_in(kWorld.mins, kWorld.maxs);
  const float h = rng.uniform(4.0f, max_half);
  return {{c.x - h, c.y - h, c.z}, {c.x + h, c.y + h, c.z + 56}};
}

void BM_Build(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    AreanodeTree t(kWorld, depth);
    benchmark::DoNotOptimize(t.node_count());
  }
}
BENCHMARK(BM_Build)->Arg(1)->Arg(4)->Arg(5)->Arg(8);

void BM_LinkNodeFor(benchmark::State& state) {
  AreanodeTree t(kWorld, static_cast<int>(state.range(0)));
  Rng rng(1);
  std::vector<Aabb> boxes;
  for (int i = 0; i < 1024; ++i) boxes.push_back(random_box(rng, 30));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.link_node_for(boxes[i++ & 1023]));
  }
}
BENCHMARK(BM_LinkNodeFor)->Arg(4)->Arg(5);

void BM_LinkUnlink(benchmark::State& state) {
  AreanodeTree t(kWorld, 4);
  Rng rng(1);
  std::vector<Aabb> boxes;
  for (int i = 0; i < 1024; ++i) boxes.push_back(random_box(rng, 30));
  size_t i = 0;
  for (auto _ : state) {
    const Aabb& b = boxes[i++ & 1023];
    const int node = t.link(7, b);
    t.unlink(7, node);
  }
}
BENCHMARK(BM_LinkUnlink);

void BM_LeavesFor(benchmark::State& state) {
  AreanodeTree t(kWorld, static_cast<int>(state.range(0)));
  Rng rng(1);
  std::vector<Aabb> boxes;
  for (int i = 0; i < 1024; ++i) boxes.push_back(random_box(rng, 300));
  std::vector<int> out;
  size_t i = 0;
  for (auto _ : state) {
    out.clear();
    t.leaves_for(boxes[i++ & 1023], out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_LeavesFor)->Arg(1)->Arg(4)->Arg(5);

void BM_TraverseWithEntities(benchmark::State& state) {
  AreanodeTree t(kWorld, 4);
  Rng rng(1);
  const int entities = static_cast<int>(state.range(0));
  for (uint32_t id = 0; id < static_cast<uint32_t>(entities); ++id)
    t.link(id, random_box(rng, 20));
  std::vector<Aabb> queries;
  for (int i = 0; i < 256; ++i) queries.push_back(random_box(rng, 200));
  size_t i = 0;
  for (auto _ : state) {
    int scanned = 0;
    t.traverse(queries[i++ & 255], [&](int node) {
      scanned += static_cast<int>(t.node(node).objects.size());
    });
    benchmark::DoNotOptimize(scanned);
  }
}
BENCHMARK(BM_TraverseWithEntities)->Arg(32)->Arg(160)->Arg(512);

}  // namespace
}  // namespace qserv::spatial
