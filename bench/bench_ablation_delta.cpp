// Ablation (ours): delta-compressed snapshots. The paper's companion
// study [1] found server bandwidth a non-issue *because* QuakeWorld
// delta-compresses its updates; this bench quantifies that on our
// substrate: bytes on the wire and service quality, full vs delta.
#include "bench_common.hpp"
#include "src/net/virtual_udp.hpp"
#include "src/bots/client_driver.hpp"
#include "src/core/parallel_server.hpp"
#include "src/spatial/map_gen.hpp"

using namespace qserv;

namespace {

struct Run {
  uint64_t bytes = 0;
  uint64_t replies = 0;
  double response_ms = 0.0;
  uint64_t deltas = 0, fulls = 0;
};

Run run_one(int players, bool delta, double seconds) {
  vt::SimPlatform p;
  net::VirtualNetwork net(p, {});
  const auto map = harness::default_map();
  core::ServerConfig scfg;
  scfg.threads = 4;
  scfg.lock_policy = core::LockPolicy::kOptimized;
  scfg.delta_snapshots = delta;
  core::ParallelServer server(p, net, *map, scfg);
  bots::ClientDriver::Config dcfg;
  dcfg.players = players;
  bots::ClientDriver driver(p, net, *map, server, dcfg);
  server.start();
  driver.start();
  p.call_after(vt::seconds_d(seconds), [&] {
    server.request_stop();
    driver.request_stop();
  });
  p.run();
  Run out;
  out.bytes = net.bytes_sent();
  const auto agg = driver.aggregate(vt::seconds_d(seconds));
  out.replies = agg.replies;
  out.response_ms = agg.response_ms_mean;
  for (const auto& c : driver.clients()) {
    out.deltas += c->metrics().delta_snapshots;
    out.fulls += c->metrics().full_snapshots;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOutput out("ablation_delta", argc, argv);
  bench::print_header("Ablation — delta-compressed snapshots",
                      "bandwidth technique referenced via [1]");
  const double seconds = bench::env_seconds("QSERV_MEASURE_SECONDS", 8.0);

  Table t("Full vs delta snapshots (4 threads, optimized locking)");
  t.header({"players", "mode", "MB on wire", "bytes/reply", "resp (ms)",
            "delta share"});
  for (const int players : {64, 128, 160}) {
    for (const bool delta : {false, true}) {
      const Run r = run_one(players, delta, seconds);
      const double per_reply =
          r.replies ? static_cast<double>(r.bytes) /
                          static_cast<double>(r.replies)
                    : 0.0;
      const double share =
          (r.deltas + r.fulls) > 0
              ? static_cast<double>(r.deltas) /
                    static_cast<double>(r.deltas + r.fulls)
              : 0.0;
      t.row({std::to_string(players), delta ? "delta" : "full",
             Table::num(static_cast<double>(r.bytes) / 1e6, 1),
             Table::num(per_reply, 0), Table::num(r.response_ms, 1),
             delta ? Table::pct(share) : "--"});
      {
        // Bespoke measurement (not an ExperimentResult): raw point.
        std::string point;
        obs::JsonWriter w(point);
        w.begin_object();
        w.kv("label", std::to_string(players) + "p/" +
                          (delta ? "delta" : "full"));
        w.key("config");
        w.begin_object();
        w.kv("players", players);
        w.kv("delta_snapshots", delta);
        w.kv("measure_s", seconds);
        w.end_object();
        w.kv("bytes_on_wire", r.bytes);
        w.kv("replies", r.replies);
        w.kv("bytes_per_reply", per_reply);
        w.kv("response_ms_mean", r.response_ms);
        w.kv("delta_share", share);
        w.end_object();
        out.add_raw("delta_snapshots", std::move(point));
      }
      std::printf("%dp %s: %.1f MB, %.0f B/reply\n", players,
                  delta ? "delta" : "full",
                  static_cast<double>(r.bytes) / 1e6, per_reply);
      std::fflush(stdout);
    }
  }
  std::printf("\n");
  t.print();

  auto trace_cfg = harness::paper_config(harness::ServerMode::kParallel, 4,
                                         128, core::LockPolicy::kOptimized);
  trace_cfg.server.delta_snapshots = true;
  out.capture_trace(trace_cfg);
  return out.finish();
}
