// Microbenchmarks: wire protocol serialization and the virtual network /
// simulation substrate (host-time).
#include <benchmark/benchmark.h>

#include "src/net/protocol.hpp"
#include "src/net/virtual_udp.hpp"
#include "src/vthread/sim_platform.hpp"

namespace qserv {
namespace {

void BM_EncodeMove(benchmark::State& state) {
  net::MoveCmd m;
  m.sequence = 7;
  m.forward = 320;
  for (auto _ : state) {
    auto bytes = net::encode(m);
    benchmark::DoNotOptimize(bytes.data());
  }
}
BENCHMARK(BM_EncodeMove);

void BM_DecodeMove(benchmark::State& state) {
  const auto bytes = net::encode(net::MoveCmd{});
  for (auto _ : state) {
    net::ByteReader r(bytes);
    net::ClientMsgType type;
    net::decode_client_type(r, type);
    net::MoveCmd out;
    net::decode(r, out);
    benchmark::DoNotOptimize(out.sequence);
  }
}
BENCHMARK(BM_DecodeMove);

void BM_EncodeSnapshot(benchmark::State& state) {
  net::Snapshot s;
  s.entities.resize(static_cast<size_t>(state.range(0)));
  s.events.resize(4);
  for (auto _ : state) {
    auto bytes = net::encode(s);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) *
                          int64_t(net::encode(s).size()));
}
BENCHMARK(BM_EncodeSnapshot)->Arg(8)->Arg(32)->Arg(128);

void BM_VirtualUdpRoundtrip(benchmark::State& state) {
  // Host cost of one simulated send+deliver+recv cycle, including the
  // event-queue machinery.
  for (auto _ : state) {
    state.PauseTiming();
    vt::SimPlatform p;
    net::VirtualNetwork::Config cfg;
    cfg.jitter = {};
    net::VirtualNetwork net(p, cfg);
    auto a = net.open(1);
    auto b = net.open(2);
    state.ResumeTiming();
    p.spawn("t", vt::Domain::kServer, [&] {
      net::Datagram d;
      for (int i = 0; i < 1000; ++i) {
        a->send(2, {1, 2, 3, 4});
        p.sleep_for(vt::millis(1));
        b->try_recv(d);
      }
    });
    p.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_VirtualUdpRoundtrip)->Unit(benchmark::kMillisecond);

void BM_SimContextSwitch(benchmark::State& state) {
  // Host cost of a fiber block/resume pair (the simulation's unit cost).
  for (auto _ : state) {
    state.PauseTiming();
    vt::SimPlatform p;
    state.ResumeTiming();
    p.spawn("t", vt::Domain::kServer, [&] {
      for (int i = 0; i < 10000; ++i) p.yield();
    });
    p.run();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimContextSwitch)->Unit(benchmark::kMillisecond);

void BM_SimComputeHtResched(benchmark::State& state) {
  // Host cost of compute with hyper-thread rate rescheduling.
  for (auto _ : state) {
    state.PauseTiming();
    vt::SimPlatform::MachineConfig mc;
    mc.cores = 1;
    mc.ht_per_core = 2;
    vt::SimPlatform p(mc);
    state.ResumeTiming();
    for (int t = 0; t < 2; ++t) {
      p.spawn("t", vt::Domain::kServer, [&] {
        for (int i = 0; i < 5000; ++i) p.compute(vt::micros(10));
      });
    }
    p.run();
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimComputeHtResched)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace qserv
