// Ablation (paper §5.1 future work): "dynamically assigning threads to
// players taking into account the region they are located may reduce
// contention". We implement region-based assignment at connect time
// (players spawning in the same map region share a thread) and compare
// lock contention against static block assignment. Because players roam,
// the benefit decays over the session — which is why the paper calls for
// *dynamic* reassignment.
#include "bench_common.hpp"

using namespace qserv;
using namespace qserv::harness;

int main(int argc, char** argv) {
  bench::BenchOutput out("ablation_assignment", argc, argv);
  bench::print_header("Ablation — player-to-thread assignment policy",
                      "§5.1 future-work proposal");

  struct Variant {
    const char* name;
    core::AssignPolicy assign;
    vt::Duration reassign;
  };
  const Variant variants[] = {
      {"block (static)", core::AssignPolicy::kBlock, {}},
      {"region @connect", core::AssignPolicy::kRegion, {}},
      {"region dynamic 1s", core::AssignPolicy::kRegion, vt::seconds(1)},
  };

  Table t("Block vs region vs dynamic-region assignment");
  t.header({"threads/players", "assignment", "rate (replies/s)", "lock",
            "leaf-shared/frame", "wait", "migrations"});
  for (const int threads : {4, 8}) {
    for (const int players : {128, 160}) {
      for (const auto& v : variants) {
        auto cfg = paper_config(ServerMode::kParallel, threads, players,
                                core::LockPolicy::kConservative);
        cfg.server.assign_policy = v.assign;
        cfg.server.reassign_interval = v.reassign;
        bench::apply_windows(cfg);
        const auto r = run_experiment(cfg);
        const std::string label = std::to_string(threads) + "t/" +
                                  std::to_string(players) + "p/" + v.name;
        print_summary(label, r);
        out.add("assignment", label, cfg, r);
        t.row({std::to_string(threads) + "t/" + std::to_string(players) + "p",
               v.name, Table::num(r.response_rate, 0),
               Table::pct(r.pct.lock()),
               Table::pct(r.leaves_shared_per_frame_pct),
               Table::pct(r.pct.intra_wait + r.pct.inter_wait()),
               std::to_string(r.reassignments)});
      }
    }
  }
  std::printf("\n");
  t.print();

  auto trace_cfg = paper_config(ServerMode::kParallel, 4, 160,
                                core::LockPolicy::kConservative);
  trace_cfg.server.assign_policy = core::AssignPolicy::kRegion;
  trace_cfg.server.reassign_interval = vt::seconds(1);
  out.capture_trace(trace_cfg);
  return out.finish();
}
