// Real-socket transport bench + hot-restart acceptance gate.
//
// Spawns qserv-serve (ParallelServer over kernel UDP, loopback) as a
// separate process, drives the paper's 160-player capacity anchor at the
// 33 ms client cadence from this process over its own RealUdpTransport,
// and fires SIGUSR2 mid-measurement so the server performs a
// zero-downtime hot restart under full load.
//
// Acceptance (exit non-zero on violation):
//   - 0 clients lost: every client still connected at the end;
//   - 0 forced reconnects: no client hit its 2 s server-silence timeout
//     (silence_reconnects == 0) and none rejoined;
//   - service gap <= --gap-budget-ms (default 37.5 ms, three 12.5 ms
//     frame budgets): worst reply-to-reply gap over the nominal tick.
//
// Exports a qserv-bench-v1 document whose point carries the transport
// counter block (both sides of satellite 2: the client-side real
// transport populates the same instruments the virtual segment does)
// and `pause_ms` = the measured service gap, so the qserv-trend gate
// tracks restart continuity like any other pause metric.
#include <libgen.h>
#include <signal.h>
#include <stdio.h>
#include <string.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/bots/client_driver.hpp"
#include "src/net/real_udp.hpp"
#include "src/obs/json.hpp"
#include "src/spatial/map_gen.hpp"
#include "src/vthread/real_platform.hpp"

using namespace qserv;

namespace {

struct Options {
  int players = 160;  // paper's 4-thread capacity anchor
  int threads = 4;
  uint16_t base_port = 29500;
  double warmup_s = 3.0;
  double measure_s = 8.0;
  double gap_budget_ms = 37.5;  // three 12.5 ms frame budgets
  bool restart = true;
  std::string out = "BENCH_real_transport.json";
  std::string serve_bin;  // resolved from argv[0] when empty
  std::string work_dir = "/tmp";
};

int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void sleep_ms(int64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

int read_pid(const std::string& path) {
  std::ifstream f(path);
  int pid = 0;
  f >> pid;
  return pid;
}

pid_t spawn_server(const Options& opt, const std::string& pid_file,
                   const std::string& ready_file,
                   const std::string& handoff_sock) {
  const pid_t pid = fork();
  if (pid != 0) return pid;
  std::vector<std::string> args = {
      opt.serve_bin,
      "--threads", std::to_string(opt.threads),
      "--base-port", std::to_string(opt.base_port),
      "--pid-file", pid_file,
      "--ready-file", ready_file,
      "--handoff-sock", handoff_sock,
  };
  std::vector<char*> cargs;
  for (const auto& a : args) cargs.push_back(const_cast<char*>(a.c_str()));
  cargs.push_back(nullptr);
  execv(opt.serve_bin.c_str(), cargs.data());
  fprintf(stderr, "bench_real_transport: cannot exec %s\n",
          opt.serve_bin.c_str());
  _exit(127);
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (a == "--players" && (v = next()))
      opt.players = atoi(v);
    else if (a == "--threads" && (v = next()))
      opt.threads = atoi(v);
    else if (a == "--base-port" && (v = next()))
      opt.base_port = static_cast<uint16_t>(atoi(v));
    else if (a == "--measure-s" && (v = next()))
      opt.measure_s = atof(v);
    else if (a == "--warmup-s" && (v = next()))
      opt.warmup_s = atof(v);
    else if (a == "--gap-budget-ms" && (v = next()))
      opt.gap_budget_ms = atof(v);
    else if (a == "--no-restart")
      opt.restart = false;
    else if (a == "--out" && (v = next()))
      opt.out = v;
    else if (a == "--serve-bin" && (v = next()))
      opt.serve_bin = v;
    else if (a == "--work-dir" && (v = next()))
      opt.work_dir = v;
    else {
      fprintf(stderr, "unknown flag %s\n", a.c_str());
      return 2;
    }
  }
  if (opt.serve_bin.empty()) {
    // bench binaries live in <build>/bench/, qserv-serve in
    // <build>/tools/.
    std::vector<char> self(argv[0], argv[0] + strlen(argv[0]) + 1);
    opt.serve_bin = std::string(dirname(self.data())) + "/../tools/qserv-serve";
  }
  const std::string tag = std::to_string(getpid());
  const std::string pid_file = opt.work_dir + "/qserv-bench-" + tag + ".pid";
  const std::string ready_file =
      opt.work_dir + "/qserv-bench-" + tag + ".ready";
  const std::string handoff_sock =
      opt.work_dir + "/qserv-bench-" + tag + ".handoff";

  const pid_t gen0 = spawn_server(opt, pid_file, ready_file, handoff_sock);
  if (gen0 < 0) return 1;
  const int64_t ready_deadline = now_ms() + 20'000;
  while (read_pid(pid_file) == 0 && now_ms() < ready_deadline) sleep_ms(20);
  int server_pid = read_pid(pid_file);
  if (server_pid == 0) {
    fprintf(stderr, "server never became ready\n");
    kill(gen0, SIGKILL);
    return 1;
  }

  // The client farm: same bot/netchan/protocol stack as every Sim bench,
  // pointed at the out-of-process server through the real transport.
  vt::RealPlatform platform;
  const auto map = spatial::make_large_deathmatch(7);  // qserv-serve default
  net::RealUdpTransport net(platform, {});
  bots::ClientDriver::Config dcfg;
  dcfg.players = opt.players;
  dcfg.first_local_port = static_cast<uint16_t>(opt.base_port + 1000);
  dcfg.frame_interval = vt::millis(33);
  dcfg.connect_stagger = vt::millis(5);
  // A restart gap a client perceives as server death would force a
  // reconnect here — which the acceptance gate counts as a failure.
  dcfg.server_silence_timeout = vt::seconds(2);
  const int threads = opt.threads;
  const int players = opt.players;
  const uint16_t base_port = opt.base_port;
  dcfg.join_port = [threads, players, base_port](int i) {
    const int t = i * threads / std::max(1, players);
    return static_cast<uint16_t>(base_port + std::min(t, threads - 1));
  };
  bots::ClientDriver driver(platform, net, map, dcfg);
  driver.start();

  sleep_ms(static_cast<int64_t>(opt.warmup_s * 1000));
  driver.begin_measurement();
  const int64_t measure_ms = static_cast<int64_t>(opt.measure_s * 1000);

  bool restarted = false;
  if (opt.restart) {
    sleep_ms(measure_ms / 2);
    const int old_pid = server_pid;
    kill(old_pid, SIGUSR2);
    const int64_t restart_deadline = now_ms() + 30'000;
    while (now_ms() < restart_deadline) {
      const int p = read_pid(pid_file);
      if (p != 0 && p != old_pid) {
        server_pid = p;
        restarted = true;
        break;
      }
      sleep_ms(10);
    }
    if (!restarted) fprintf(stderr, "hot restart never completed\n");
    sleep_ms(measure_ms - measure_ms / 2);
  } else {
    sleep_ms(measure_ms);
  }

  driver.request_stop();
  platform.join_all();
  const auto agg = driver.aggregate(vt::Duration{measure_ms * 1'000'000});
  const net::TransportCounters tc = net.counters();

  // Tear the server down (gen0 may already be gone after the handoff).
  kill(server_pid, SIGTERM);
  if (gen0 > 0) waitpid(gen0, nullptr, 0);

  const double max_gap_ms = static_cast<double>(agg.max_reply_gap_ns) / 1e6;
  // Replies arrive once per 33 ms server tick; the service gap is the
  // worst stretch beyond that nominal cadence.
  const double service_gap_ms = std::max(0.0, max_gap_ms - 33.0);

  printf("real transport: %d players, %" PRIu64 " replies (%.0f/s), "
         "p95 %.2f ms\n",
         agg.connected, agg.replies, agg.response_rate, agg.response_ms_p95);
  printf("restart: %s, max reply gap %.1f ms, service gap %.1f ms "
         "(budget %.1f)\n",
         restarted ? "completed" : (opt.restart ? "FAILED" : "skipped"),
         max_gap_ms, service_gap_ms, opt.gap_budget_ms);
  printf("continuity: silence_reconnects=%" PRIu64 " rejoins=%" PRIu64
         " drops_detected=%" PRIu64 " port_collisions=%" PRIu64 "\n",
         agg.silence_reconnects, agg.rejoins, agg.drops_detected,
         agg.port_collisions);
  printf("transport: sent=%" PRIu64 " dropped=%" PRIu64 " overflowed=%" PRIu64
         " truncated=%" PRIu64 " bytes=%" PRIu64 "\n",
         tc.packets_sent, tc.packets_dropped, tc.packets_overflowed,
         tc.packets_truncated, tc.bytes_sent);

  // qserv-bench-v1 export with the transport block; pause_ms carries the
  // service gap into the trend gate's keyed metrics.
  std::string json;
  obs::JsonWriter w(json);
  w.begin_object();
  w.kv("schema", "qserv-bench-v1");
  w.kv("bench", "real_transport");
  w.key("groups");
  w.begin_array();
  w.begin_object();
  w.kv("name", "loopback");
  w.key("points");
  w.begin_array();
  w.begin_object();
  w.kv("label", opt.restart ? "hot_restart_160" : "steady_160");
  w.key("response");
  w.begin_object();
  w.kv("rate_per_s", agg.response_rate);
  w.kv("ms_mean", agg.response_ms_mean);
  w.kv("ms_p50", agg.response_ms_p50);
  w.kv("ms_p95", agg.response_ms_p95);
  w.kv("connected", static_cast<int64_t>(agg.connected));
  w.end_object();
  w.kv("pause_ms", service_gap_ms);
  w.key("transport");
  w.begin_object();
  w.kv("players", static_cast<int64_t>(opt.players));
  w.kv("threads", static_cast<int64_t>(opt.threads));
  w.kv("restarted", restarted);
  w.kv("max_reply_gap_ms", max_gap_ms);
  w.kv("service_gap_ms", service_gap_ms);
  w.kv("silence_reconnects", agg.silence_reconnects);
  w.kv("rejoins", agg.rejoins);
  w.kv("drops_detected", agg.drops_detected);
  w.kv("port_collisions", agg.port_collisions);
  w.kv("packets_sent", tc.packets_sent);
  w.kv("packets_dropped", tc.packets_dropped);
  w.kv("packets_overflowed", tc.packets_overflowed);
  w.kv("packets_to_closed_ports", tc.packets_to_closed_ports);
  w.kv("packets_truncated", tc.packets_truncated);
  w.kv("bytes_sent", tc.bytes_sent);
  w.end_object();
  w.end_object();
  w.end_array();
  w.end_object();
  w.end_array();
  w.end_object();
  std::ofstream f(opt.out, std::ios::trunc);
  f << json << "\n";
  f.close();
  printf("wrote %s\n", opt.out.c_str());
  ::unlink(pid_file.c_str());
  ::unlink(ready_file.c_str());

  bool ok = true;
  if (agg.connected != opt.players) {
    fprintf(stderr, "FAIL: %d/%d clients connected at end\n", agg.connected,
            opt.players);
    ok = false;
  }
  if (agg.silence_reconnects != 0 || agg.rejoins != 0) {
    fprintf(stderr, "FAIL: forced reconnects (silence=%" PRIu64
                    " rejoins=%" PRIu64 ")\n",
            agg.silence_reconnects, agg.rejoins);
    ok = false;
  }
  if (opt.restart && !restarted) {
    fprintf(stderr, "FAIL: hot restart did not complete\n");
    ok = false;
  }
  if (service_gap_ms > opt.gap_budget_ms) {
    fprintf(stderr, "FAIL: service gap %.1f ms exceeds budget %.1f ms\n",
            service_gap_ms, opt.gap_budget_ms);
    ok = false;
  }
  return ok ? 0 : 1;
}
