// §4.1 map study: "the reply processing time may vary between maps by as
// much as 15% of total execution time at server saturation... maps
// exhibiting higher visibility incurring higher reply processing times as
// well", while "the request processing time does not vary considerably".
//
// We run the sequential server at saturation on maps spanning the
// visibility spectrum: one open arena (everyone sees everyone), the
// canonical 4x4-room map, and a dense 6x6 warren of small rooms.
#include "bench_common.hpp"
#include "src/spatial/map_gen.hpp"

using namespace qserv;
using namespace qserv::harness;

int main(int argc, char** argv) {
  bench::BenchOutput out("map_visibility", argc, argv);
  bench::print_header("Map visibility vs reply processing time",
                      "§4.1 text (multi-map study)");

  struct MapSpec {
    const char* name;
    spatial::MapGenParams params;
  };
  MapSpec specs[3];
  specs[0].name = "open arena (max visibility)";
  specs[0].params.rooms_x = 1;
  specs[0].params.rooms_y = 1;
  specs[0].params.room_size = 2048;
  specs[0].params.pillars_per_room = 4;
  specs[0].params.spawns_per_room = 224;
  specs[0].params.items_per_room = 48;
  specs[1].name = "4x4 rooms (canonical)";
  specs[1].params.rooms_x = 4;
  specs[1].params.rooms_y = 4;
  specs[1].params.spawns_per_room = 14;
  specs[1].params.items_per_room = 4;
  specs[2].name = "8x8 bunker (low visibility)";
  specs[2].params.rooms_x = 8;
  specs[2].params.rooms_y = 8;
  specs[2].params.room_size = 280;
  specs[2].params.door_width = 56;  // narrow doorways: heavy occlusion
  specs[2].params.pillars_per_room = 0;
  specs[2].params.spawns_per_room = 4;
  specs[2].params.items_per_room = 1;

  Table t("Sequential server at saturation (160 players)");
  t.header({"map", "reply %", "request %", "rate (replies/s)",
            "resp (ms)", "visible ents/snapshot"});
  for (const auto& spec : specs) {
    auto cfg = paper_config(ServerMode::kSequential, 1, 160,
                            core::LockPolicy::kNone);
    cfg.map = std::make_shared<const spatial::GameMap>(
        spatial::generate_map(spec.params, spec.name));
    bench::apply_windows(cfg);
    const auto r = run_experiment(cfg);
    print_summary(spec.name, r);
    out.add("maps", spec.name, cfg, r);
    const double request =
        r.pct.exec + r.pct.receive + r.pct.lock();
    t.row({spec.name, Table::pct(r.pct.reply), Table::pct(request),
           Table::num(r.response_rate, 0), Table::num(r.response_ms_mean, 1),
           Table::num(r.snapshot_entities_mean, 1)});
  }
  std::printf("\n");
  t.print();
  std::printf(
      "(paper: reply processing varies across maps by up to 15%% of total\n"
      " execution time at saturation, higher-visibility maps higher, while\n"
      " request processing does not vary considerably. Here the mechanism\n"
      " shows primarily as capacity: more visible entities per snapshot ->\n"
      " costlier replies -> earlier saturation / lower delivered rate,\n"
      " while the request-phase share stays flat.)\n");

  out.capture_trace(paper_config(ServerMode::kSequential, 1, 160,
                                 core::LockPolicy::kNone));
  return out.finish();
}
