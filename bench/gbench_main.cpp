// Shared main for the google-benchmark micro benches, replacing
// benchmark::benchmark_main so all bench binaries share one CLI contract:
// --measure/--warmup land in the QSERV_* environment variables, and any
// flag neither we nor google-benchmark recognize is a hard error instead
// of a silently ignored typo.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  // Peel off the qserv-wide flags first; everything else goes to
  // benchmark::Initialize, which consumes the --benchmark_* family and
  // leaves anything it does not recognize in argv.
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto seconds_arg = [&](const char* flag, const char* env) {
      if (i + 1 >= argc || std::atof(argv[i + 1]) <= 0.0) {
        std::fprintf(stderr, "%s requires a positive seconds value\n", flag);
        std::exit(2);
      }
      setenv(env, argv[++i], /*overwrite=*/1);
    };
    if (a == "--measure") {
      seconds_arg("--measure", "QSERV_MEASURE_SECONDS");
    } else if (a == "--warmup") {
      seconds_arg("--warmup", "QSERV_WARMUP_SECONDS");
    } else {
      rest.push_back(argv[i]);
    }
  }
  int rest_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&rest_argc, rest.data());
  if (rest_argc > 1) {
    std::fprintf(stderr, "unknown argument: %s\n", rest[1]);
    return 2;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
