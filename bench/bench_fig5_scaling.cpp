// Figure 5: parallel server performance with conservative locking.
//   (a) average execution-time breakdowns for 2/4/8 threads across player
//       counts,
//   (b) total server response rate vs players per thread count,
//   (c) average server response time.
// Paper findings to match: receive and reply scale with threads; lock
// time grows from ~2% to ~35% from 64 to 160 players; total wait times
// reach 40%+ with inter-frame > intra-frame; saturation at roughly
// 128/144/160 players for 2/4/8 threads; 8 threads barely beats 4
// (hyper-threaded contexts share cores).
#include "alloc_counter.hpp"
#include "bench_common.hpp"

using namespace qserv;
using namespace qserv::harness;

int main(int argc, char** argv) {
  bench::BenchOutput out("fig5_scaling", argc, argv);
  bench::print_header("Figure 5 — parallel server performance",
                      "Fig. 5(a,b,c), §4.2");

  // The paper sweeps 64..160; we extend to 192 so the saturation point of
  // every thread count is visible (our simulated testbed's capacity
  // frontier sits slightly above the original hardware's).
  const std::vector<int> threads{2, 4, 8};
  const std::vector<int> players{64, 96, 128, 144, 160, 176, 192};

  // The scaling sweeps run the DESIGN.md §15 reply hot path (SoA frame
  // view + shared cluster baselines + arena wire buffers); a legacy-reply
  // sequential sweep rides along so the before/after reply share is one
  // bench run apart.
  const auto enable_reply_path = [](ExperimentConfig& cfg) {
    cfg.server.reply.soa_view = true;
    cfg.server.reply.shared_baselines = true;
  };

  // Sequential reference for the rate plot (the paper overlays it).
  std::vector<SweepPoint> seq;
  for (const int n : players) {
    SweepPoint p;
    p.label = "seq/" + std::to_string(n) + "p";
    p.config =
        paper_config(ServerMode::kSequential, 1, n, core::LockPolicy::kNone);
    bench::apply_windows(p.config);
    enable_reply_path(p.config);
    seq.push_back(std::move(p));
  }
  run_sweep(seq);

  std::vector<SweepPoint> seq_legacy;
  for (const int n : players) {
    SweepPoint p;
    p.label = "seq-legacy/" + std::to_string(n) + "p";
    p.config =
        paper_config(ServerMode::kSequential, 1, n, core::LockPolicy::kNone);
    bench::apply_windows(p.config);
    seq_legacy.push_back(std::move(p));
  }
  run_sweep(seq_legacy);

  auto grid = paper_grid(threads, players, core::LockPolicy::kConservative);
  for (auto& p : grid) {
    bench::apply_windows(p.config);
    enable_reply_path(p.config);
  }
  const uint64_t allocs_before = bench::heap_allocs();
  run_sweep(grid);
  const uint64_t sweep_allocs = bench::heap_allocs() - allocs_before;
  uint64_t sweep_frames = 0;
  for (const auto& p : grid) sweep_frames += p.result.frames;
  std::printf(
      "\nheap allocations over the conservative sweep: %llu"
      " (%.1f per server frame, %llu frames; whole process incl. clients)\n",
      static_cast<unsigned long long>(sweep_allocs),
      sweep_frames > 0
          ? static_cast<double>(sweep_allocs) / static_cast<double>(sweep_frames)
          : 0.0,
      static_cast<unsigned long long>(sweep_frames));

  out.add_points("sequential", seq);
  out.add_points("sequential-legacy-reply", seq_legacy);
  out.add_points("conservative", grid);

  Table reply_cmp(
      "Reply share, legacy vs shared-baseline path (sequential, % of total)");
  reply_cmp.header({"players", "legacy", "shared", "delta"});
  for (size_t i = 0; i < players.size(); ++i) {
    const double legacy = seq_legacy[i].result.pct.reply;
    const double shared = seq[i].result.pct.reply;
    reply_cmp.row({std::to_string(players[i]), Table::pct(legacy),
                   Table::pct(shared), Table::pct(shared - legacy)});
  }
  std::printf("\n");
  reply_cmp.print();

  Table breakdowns("Fig 5(a): execution time breakdowns (% of total)");
  breakdowns.header(breakdown_header("threads/players"));
  for (const auto& p : grid) breakdowns.row(breakdown_row(p.label, p.result));
  std::printf("\n");
  breakdowns.print();

  Table rates("Fig 5(b): total server response rate (replies/s)");
  {
    std::vector<std::string> hdr{"players", "seq"};
    for (const int t : threads) hdr.push_back(std::to_string(t) + "t");
    rates.header(hdr);
    for (size_t i = 0; i < players.size(); ++i) {
      std::vector<std::string> row{std::to_string(players[i]),
                                   Table::num(seq[i].result.response_rate, 0)};
      for (size_t t = 0; t < threads.size(); ++t) {
        row.push_back(
            Table::num(grid[t * players.size() + i].result.response_rate, 0));
      }
      rates.row(row);
    }
  }
  std::printf("\n");
  rates.print();

  Table resp("Fig 5(c): average server response time (ms)");
  {
    std::vector<std::string> hdr{"players", "seq"};
    for (const int t : threads) hdr.push_back(std::to_string(t) + "t");
    resp.header(hdr);
    for (size_t i = 0; i < players.size(); ++i) {
      std::vector<std::string> row{
          std::to_string(players[i]),
          Table::num(seq[i].result.response_ms_mean, 1)};
      for (size_t t = 0; t < threads.size(); ++t) {
        row.push_back(Table::num(
            grid[t * players.size() + i].result.response_ms_mean, 1));
      }
      resp.row(row);
    }
  }
  std::printf("\n");
  resp.print();

  // Saturation summary (§4.2: "the server starts to saturate at 128, 144,
  // and 160 players with 2, 4, and 8 server threads").
  Table sat("Saturation (player count where response rate stops improving)");
  sat.header({"server", "saturation players"});
  {
    std::vector<SweepPoint> s(seq.begin(), seq.end());
    sat.row({"sequential",
             std::to_string(saturation_players(s, players))});
    for (size_t t = 0; t < threads.size(); ++t) {
      std::vector<SweepPoint> slice(grid.begin() + long(t * players.size()),
                                    grid.begin() + long((t + 1) * players.size()));
      sat.row({std::to_string(threads[t]) + " threads",
               std::to_string(saturation_players(slice, players))});
    }
  }
  std::printf("\n");
  sat.print();

  // Representative timeline: the 4-thread server at 128 players.
  out.capture_trace(paper_config(ServerMode::kParallel, 4, 128,
                                 core::LockPolicy::kConservative));
  return out.finish();
}
