// Process-wide heap-allocation counter for benches: overrides the global
// (non-aligned) operator new/delete pair and counts every allocation, so
// a bench can report allocations-per-frame deltas for hot-path memory
// work. Include from exactly ONE translation unit per binary — the
// replacement operators are definitions, not declarations.
//
// Over-aligned allocations keep using the library's aligned operators
// (replacing only the unaligned pair keeps new/delete pairing intact);
// they are rare enough in this codebase not to matter for the counts.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "src/core/alloc_probe.hpp"

namespace qserv::bench {

inline std::atomic<uint64_t> g_heap_allocs{0};

// Total heap allocations observed in this process so far.
inline uint64_t heap_allocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

// Registers the counter as the harness's allocation probe
// (src/core/alloc_probe.hpp) at static-init time, so run_experiment can
// report allocs_per_frame in any binary that includes this header.
inline const bool g_alloc_probe_registered = [] {
  core::set_alloc_probe(&heap_allocs);
  return true;
}();

}  // namespace qserv::bench

void* operator new(std::size_t n) {
  qserv::bench::g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n > 0 ? n : 1)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t n) {
  qserv::bench::g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n > 0 ? n : 1)) return p;
  throw std::bad_alloc{};
}

// The nothrow pair must be replaced alongside the plain pair: libstdc++
// allocates stable_sort's temporary buffer with nothrow new but returns
// it through plain operator delete — leaving one side unreplaced trips
// ASan's alloc-dealloc-mismatch check under sanitized builds.
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  qserv::bench::g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n > 0 ? n : 1);
}

void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  qserv::bench::g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n > 0 ? n : 1);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
