// Process-wide heap-allocation counter for benches: overrides the global
// (non-aligned) operator new/delete pair and counts every allocation, so
// a bench can report allocations-per-frame deltas for hot-path memory
// work. Include from exactly ONE translation unit per binary — the
// replacement operators are definitions, not declarations.
//
// Over-aligned allocations keep using the library's aligned operators
// (replacing only the unaligned pair keeps new/delete pairing intact);
// they are rare enough in this codebase not to matter for the counts.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace qserv::bench {

inline std::atomic<uint64_t> g_heap_allocs{0};

// Total heap allocations observed in this process so far.
inline uint64_t heap_allocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

}  // namespace qserv::bench

void* operator new(std::size_t n) {
  qserv::bench::g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n > 0 ? n : 1)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t n) {
  qserv::bench::g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n > 0 ? n : 1)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
