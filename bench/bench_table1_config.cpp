// Table 1: configuration of the game server system. Prints the simulated
// machine model (substituting for the paper's quad hyper-threaded Xeon)
// alongside the host actually executing the simulation.
#include <thread>

#include "bench_common.hpp"
#include "src/vthread/sim_platform.hpp"

using namespace qserv;

int main(int argc, char** argv) {
  bench::BenchOutput out("table1_config", argc, argv);
  bench::print_header("Table 1 — configuration of the game server system",
                      "Table 1, §4");

  harness::ExperimentConfig cfg = harness::paper_config(
      harness::ServerMode::kParallel, 8, 0, core::LockPolicy::kConservative);
  vt::SimPlatform platform(cfg.machine);

  Table t("Simulated server system (paper's testbed model)");
  t.header({"component", "value"});
  t.row({"CPUs", platform.machine_description()});
  t.row({"CPU model basis", "4 x Intel Xeon 1.4 GHz, 2-way HT (Table 1)"});
  t.row({"hardware threads",
         std::to_string(cfg.machine.cores * cfg.machine.ht_per_core)});
  t.row({"HT paired-context throughput",
         Table::num(cfg.machine.ht_throughput, 2) + "x one context"});
  t.row({"network", "virtual UDP, 0.5 ms +/- 0.1 ms one-way, 128-datagram "
                    "socket buffers (100 Mbit Ethernet substitute)"});
  t.row({"OS / threads model", "virtual-time scheduler; FIFO mutexes, "
                               "LinuxThreads-era primitive costs"});
  t.row({"game", "qserv deathmatch core (QuakeWorld 2.40 substitute)"});
  t.row({"map", "qdm-large: 4x4 rooms, ~2km^2 (gmdm10 substitute, "
                "designed for 16-32 players)"});
  t.row({"areanodes", "31 nodes / 16 leaves (depth 4, server default)"});
  t.print();

  Table h("Host executing the simulation");
  h.header({"component", "value"});
  h.row({"logical CPUs", std::to_string(std::thread::hardware_concurrency())});
  h.row({"execution", "single-threaded deterministic event simulation"});
  h.print();

  // This bench runs no experiment of its own; --trace still captures the
  // canonical testbed so the pipeline can be eyeballed from here too.
  out.capture_trace(harness::paper_config(harness::ServerMode::kParallel, 8,
                                          128,
                                          core::LockPolicy::kConservative));
  return out.finish();
}
