// Figure 7 and §5.1: locking overhead and contention analysis.
//   (a) fraction of lock time due to leaf vs parent areanode locking, per
//       thread count (leaf locking dominates and grows with threads and
//       players);
//   (b) average % of distinct leaf areanodes locked per request as the
//       total areanode count sweeps {3, 7, 15, 31, 63} — drops rapidly,
//       flat between 31 and 63; re-lock rates ~40% at 31, ~30% at 63;
//   (c) average % of leaves locked by >= 2 threads per frame — grows with
//       players, with a knee between 128 and 144, approaching 100% near
//       saturation.
// Plus the §5.1 text numbers: % of the map accessed per frame and lock
// operations per leaf per frame.
#include "bench_common.hpp"

using namespace qserv;
using namespace qserv::harness;

int main(int argc, char** argv) {
  bench::BenchOutput out("fig7_lock_analysis", argc, argv);
  bench::print_header("Figure 7 — locking overhead and contention",
                      "Fig. 7(a,b,c), §5.1");

  const std::vector<int> threads{2, 4, 8};
  const std::vector<int> players{64, 96, 128, 144, 160};

  auto grid = paper_grid(threads, players, core::LockPolicy::kConservative);
  for (auto& p : grid) bench::apply_windows(p.config);
  run_sweep(grid);
  out.add_points("conservative", grid);

  Table fa("Fig 7(a): share of lock time from leaf vs parent locking");
  fa.header({"threads/players", "leaf", "parent", "leaf share of lock time"});
  for (const auto& p : grid) {
    const auto& b = p.result.breakdown;
    const double leaf = static_cast<double>(b.lock_leaf.ns);
    const double parent = static_cast<double>(b.lock_parent.ns);
    const double total = leaf + parent;
    fa.row({p.label, Table::pct(p.result.pct.lock_leaf),
            Table::pct(p.result.pct.lock_parent),
            total > 0 ? Table::pct(leaf / total) : "--"});
  }
  std::printf("\n");
  fa.print();

  // (b): tree-size sweep at a fixed configuration (4 threads, 128
  // players, conservative locking — the baseline server the paper's §5
  // analysis studies).
  Table fb("Fig 7(b): distinct leaves locked per request vs areanode count");
  fb.header({"areanodes", "leaves", "distinct leaves/request",
             "% of leaves locked/request", "relocked leaves"});
  for (const int depth : {1, 2, 3, 4, 5}) {
    auto cfg =
        paper_config(ServerMode::kParallel, 4, 128, core::LockPolicy::kConservative);
    cfg.server.areanode_depth = depth;
    bench::apply_windows(cfg);
    const auto r = run_experiment(cfg);
    const int nodes = (2 << depth) - 1;
    const int leaves = 1 << depth;
    const double per_req =
        r.locks.requests_locked
            ? static_cast<double>(r.locks.distinct_leaves) /
                  static_cast<double>(r.locks.requests_locked)
            : 0.0;
    // "Relocked" leaves: lock requests beyond the first for a leaf within
    // one request, relative to distinct leaves locked.
    const double relocked =
        r.locks.distinct_leaves
            ? static_cast<double>(r.locks.relocks) /
                  static_cast<double>(r.locks.distinct_leaves)
            : 0.0;
    fb.row({std::to_string(nodes), std::to_string(leaves),
            Table::num(per_req, 2),
            Table::pct(r.distinct_leaves_per_request_pct),
            Table::pct(relocked)});
    print_summary("tree-" + std::to_string(nodes), r);
    out.add("tree_sweep", "tree-" + std::to_string(nodes), cfg, r);
  }
  std::printf("\n");
  fb.print();

  Table fc("Fig 7(c): % of leaves locked by >= 2 threads per frame");
  {
    std::vector<std::string> hdr{"players"};
    for (const int t : threads) hdr.push_back(std::to_string(t) + "t");
    fc.header(hdr);
    for (size_t i = 0; i < players.size(); ++i) {
      std::vector<std::string> row{std::to_string(players[i])};
      for (size_t t = 0; t < threads.size(); ++t)
        row.push_back(Table::pct(
            grid[t * players.size() + i].result.leaves_shared_per_frame_pct));
      fc.row(row);
    }
  }
  std::printf("\n");
  fc.print();

  Table sec51("§5.1 text: per-frame region activity");
  sec51.header({"threads/players", "% map locked/frame",
                "lock ops/leaf/frame", "lock time (% total)"});
  for (const auto& p : grid) {
    sec51.row({p.label, Table::pct(p.result.leaves_locked_per_frame_pct),
               Table::num(p.result.lock_ops_per_leaf_per_frame, 2),
               Table::pct(p.result.pct.lock())});
  }
  std::printf("\n");
  sec51.print();

  out.capture_trace(paper_config(ServerMode::kParallel, 8, 160,
                                 core::LockPolicy::kConservative));
  return out.finish();
}
