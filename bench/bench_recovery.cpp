// Crash recovery — what does the safety net cost at capacity, and how
// fast is the way back?
//
// Part 1 — recording cost at the 160-player capacity anchor (4 threads,
// conservative locking). Recovery off vs on: "on" journals every inbound
// datagram, records per-frame world digests, and checkpoints the full
// server image every 512 frames inside the master's between-frames
// window. We report the throughput delta, the encoded checkpoint size,
// and the worst host-clock serialize pause — the acceptance bound is
// 12.5 ms, half a 25 ms master frame, so a checkpoint can never cost a
// frame even if it lands at the worst point of the budget. The ON run
// ends with a digest-verified replay of the journal from the latest
// checkpoint; every replayed frame must match the live digests.
//
// Part 2 — warm-restart latency. Take the final checkpoint image from a
// fresh 160-player soak, then time decode + restore into a brand-new
// server instance on the host clock. This is the "how long is the
// service dark after a crash" number (client resume happens on their
// next packet and is covered by recovery_test's chaos kill/restart).
//
// Exit code: non-zero if the pause bound, the replay verification, or
// the restore-latency guard fails (CI runs this as a smoke check).
#include <chrono>
#include <cinttypes>
#include <memory>

#include "bench_common.hpp"
#include "src/net/virtual_udp.hpp"
#include "src/bots/client_driver.hpp"
#include "src/core/parallel_server.hpp"
#include "src/recovery/checkpoint.hpp"
#include "src/vthread/sim_platform.hpp"

using namespace qserv;
using namespace qserv::harness;

namespace {

constexpr int kCapacityPlayers = 160;       // paper's 4-thread anchor
constexpr double kMaxPauseMs = 12.5;        // half a 25 ms master frame
constexpr double kMaxRestoreMs = 250.0;     // decode + rebuild, host clock

ExperimentConfig base_config(int players) {
  auto cfg = paper_config(ServerMode::kParallel, 4, players,
                          core::LockPolicy::kConservative);
  bench::apply_windows(cfg);
  return cfg;
}

void enable_recovery(core::ServerConfig& scfg) {
  auto& r = scfg.recovery;
  r.enabled = true;
  r.checkpoint_interval = 512;  // ~8 checkpoints per ring span
  r.journal_frames = 4096;
  r.per_entity_digests = true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOutput out("recovery", argc, argv);
  bench::print_header(
      "Crash recovery — checkpoint/journal cost and warm-restart latency",
      "robustness extension (frame-aligned checkpoints, digest replay)");

  bool failed = false;

  // ---- Part 1: recording cost + replay verification -----------------
  Table cost("Recording cost at capacity (160 players, 4 threads)");
  cost.header({"recovery", "replies/s", "resp p95 ms", "ckpts", "ckpt KB",
               "worst pause ms", "jrnl frames", "jrnl records"});

  double pause_ms = 0.0;
  bool replay_ran = false, replay_ok = false;
  std::string replay_summary;
  for (const bool on : {false, true}) {
    auto cfg = base_config(kCapacityPlayers);
    if (on) {
      enable_recovery(cfg.server);
      cfg.verify_replay = true;
    }
    const auto r = run_experiment(cfg);
    out.add("cost", on ? "recording" : "baseline", cfg, r);
    const double pm = static_cast<double>(r.checkpoint_pause_ns) / 1e6;
    if (on) {
      pause_ms = pm;
      replay_ran = r.replay_ran;
      replay_ok = r.replay_ok;
      replay_summary = r.replay_summary;
    }
    cost.row({on ? "on" : "off", Table::num(r.response_rate, 0),
              Table::num(r.response_ms_p95, 2),
              std::to_string(r.checkpoints_taken),
              Table::num(static_cast<double>(r.checkpoint_bytes) / 1024.0, 1),
              on ? Table::num(pm, 3) : "-",
              std::to_string(r.journal_frames),
              std::to_string(r.journal_records)});
  }
  std::printf("\n");
  cost.print();

  if (pause_ms >= kMaxPauseMs) {
    std::fprintf(stderr,
                 "FAIL: worst checkpoint pause %.3f ms breaches the %.1f ms "
                 "between-frames budget\n",
                 pause_ms, kMaxPauseMs);
    failed = true;
  } else {
    std::printf("\ncheckpoint pause budget (< %.1f ms) held: worst %.3f ms\n",
                kMaxPauseMs, pause_ms);
  }
  if (!replay_ran || !replay_ok) {
    std::fprintf(stderr, "FAIL: replay verification %s (%s)\n",
                 replay_ran ? "diverged" : "did not run",
                 replay_summary.c_str());
    failed = true;
  } else {
    std::printf("replay verification: %s\n", replay_summary.c_str());
  }

  // ---- Part 2: warm-restart latency ---------------------------------
  // A dedicated short soak so we hold the server (run_experiment owns and
  // tears down its own); grab the final image, then time the way back.
  std::vector<uint8_t> image;
  {
    vt::SimPlatform p(base_config(kCapacityPlayers).machine);
    net::VirtualNetwork net(p, {});
    const auto map = default_map();
    core::ServerConfig scfg = base_config(kCapacityPlayers).server;
    enable_recovery(scfg);
    core::ParallelServer server(p, net, *map, scfg);
    bots::ClientDriver::Config dcfg;
    dcfg.players = kCapacityPlayers;
    bots::ClientDriver driver(p, net, *map, server, dcfg);
    server.start();
    driver.start();
    p.call_after(vt::seconds(3), [&] {
      server.request_stop();
      driver.request_stop();
    });
    p.run();
    image = server.checkpoints()->latest();
  }

  double restore_ms = 0.0;
  uint64_t restored_frame = 0;
  size_t restored_entities = 0;
  if (image.empty()) {
    std::fprintf(stderr, "FAIL: capacity soak produced no checkpoint\n");
    failed = true;
  } else {
    recovery::CheckpointData peek;
    if (recovery::decode_checkpoint(image, peek) !=
        recovery::LoadError::kNone) {
      std::fprintf(stderr, "FAIL: final checkpoint image does not decode\n");
      failed = true;
    } else {
      restored_frame = peek.frame;
      restored_entities = peek.entities.size();
      vt::SimPlatform p(base_config(kCapacityPlayers).machine);
      net::VirtualNetwork net(p, {});
      const auto map = default_map();
      core::ServerConfig scfg = base_config(kCapacityPlayers).server;
      enable_recovery(scfg);
      core::ParallelServer server(p, net, *map, scfg);
      const auto h0 = std::chrono::steady_clock::now();
      const auto err = server.restore_from(image);
      const auto h1 = std::chrono::steady_clock::now();
      restore_ms = std::chrono::duration<double, std::milli>(h1 - h0).count();
      if (err != recovery::LoadError::kNone) {
        std::fprintf(stderr, "FAIL: restore_from rejected the image\n");
        failed = true;
      }
    }
  }

  Table restart("Warm restart (decode + restore, host clock)");
  restart.header({"image KB", "frame", "entities", "restore ms"});
  restart.row({Table::num(static_cast<double>(image.size()) / 1024.0, 1),
               std::to_string(restored_frame),
               std::to_string(restored_entities),
               Table::num(restore_ms, 3)});
  std::printf("\n");
  restart.print();

  if (restore_ms >= kMaxRestoreMs) {
    std::fprintf(stderr,
                 "FAIL: restore latency %.3f ms breaches the %.0f ms guard\n",
                 restore_ms, kMaxRestoreMs);
    failed = true;
  } else if (!failed) {
    std::printf("\nrestore latency guard (< %.0f ms) held\n", kMaxRestoreMs);
  }

  out.add_raw("restart",
              "{\"label\":\"warm_restart\",\"image_bytes\":" +
                  std::to_string(image.size()) +
                  ",\"entities\":" + std::to_string(restored_entities) +
                  ",\"restore_ms\":" + std::to_string(restore_ms) + "}");

  const int rc = out.finish();
  return failed ? 1 : rc;
}
