// Figure 4: overhead of the parallel server. Compares the sequential
// server with the 1-thread parallel server (full locking machinery, one
// worker) at 64/96/128 players:
//   (a) execution-time breakdowns,
//   (b) total server response rate,
//   (c) average server response time.
// Paper findings to match: overhead < 5% at 64 players growing to ~15% at
// 128; reply phase >= 2x request phase; negligible impact on response
// rate/time.
#include "bench_common.hpp"

using namespace qserv;
using namespace qserv::harness;

int main(int argc, char** argv) {
  bench::BenchOutput out("fig4_overhead", argc, argv);
  bench::print_header("Figure 4 — overhead of the parallel server",
                      "Fig. 4(a,b,c), §4.1");

  const std::vector<int> players{64, 96, 128};
  std::vector<SweepPoint> points;
  for (const int n : players) {
    SweepPoint seq;
    seq.label = "sequential/" + std::to_string(n) + "p";
    seq.config =
        paper_config(ServerMode::kSequential, 1, n, core::LockPolicy::kNone);
    bench::apply_windows(seq.config);
    points.push_back(std::move(seq));

    SweepPoint par;
    par.label = "parallel-1t/" + std::to_string(n) + "p";
    par.config = paper_config(ServerMode::kParallel, 1, n,
                              core::LockPolicy::kConservative);
    bench::apply_windows(par.config);
    points.push_back(std::move(par));
  }
  run_sweep(points);
  out.add_points("overhead", points);

  Table breakdowns("Fig 4(a): execution time breakdown (% of total)");
  breakdowns.header(breakdown_header("server/players"));
  for (const auto& p : points)
    breakdowns.row(breakdown_row(p.label, p.result));
  std::printf("\n");
  breakdowns.print();

  Table rates("Fig 4(b,c): response rate and time");
  rates.header({"server/players", "rate (replies/s)", "avg resp (ms)",
                "p95 resp (ms)", "clients"});
  for (const auto& p : points) rates.row(rate_row(p.label, p.result));
  std::printf("\n");
  rates.print();

  // §4.1: parallelization overhead — the request-processing phase
  // (receive + exec + lock) per request, 1-thread parallel vs sequential.
  // With one thread the lock component is pure overhead: region
  // determination and lock bookkeeping, no waiting.
  Table overhead("§4.1: parallelization overhead (request phase per request)");
  overhead.header({"players", "seq us/req", "par-1t us/req", "overhead",
                   "lock share of total"});
  auto request_phase_us = [](const ExperimentResult& r) {
    const auto& b = r.breakdown;
    const vt::Duration req = b.receive + b.exec + b.lock();
    return r.requests ? static_cast<double>(req.ns) /
                            static_cast<double>(r.requests) * 1e-3
                      : 0.0;
  };
  for (size_t i = 0; i + 1 < points.size(); i += 2) {
    const auto& s = points[i].result;
    const auto& p = points[i + 1].result;
    const double seq_us = request_phase_us(s);
    const double par_us = request_phase_us(p);
    overhead.row({std::to_string(players[i / 2]), Table::num(seq_us, 1),
                  Table::num(par_us, 1),
                  Table::pct(seq_us > 0 ? par_us / seq_us - 1.0 : 0.0),
                  Table::pct(p.pct.lock())});
  }
  std::printf("\n");
  overhead.print();

  // Reply-vs-request ratio check (paper: reply phase over twice the
  // request phase).
  const auto& s64 = points[0].result;
  const double req_phase = static_cast<double>(
      (s64.breakdown.receive + s64.breakdown.exec + s64.breakdown.lock()).ns);
  const double reply_phase = static_cast<double>(s64.breakdown.reply.ns);
  std::printf("\nreply/request phase ratio at 64 players (sequential): %.2fx\n",
              req_phase > 0 ? reply_phase / req_phase : 0.0);

  out.capture_trace(paper_config(ServerMode::kParallel, 1, 96,
                                 core::LockPolicy::kConservative));
  return out.finish();
}
